package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 1 + 2x + 3x^2 recovered from noiseless samples.
	var xs, ys []float64
	for i := -5; i <= 5; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 1+2*x+3*x*x)
	}
	p, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(p.Coeffs[i], want[i], 1e-6) {
			t.Errorf("coeff[%d] = %v, want %v", i, p.Coeffs[i], want[i])
		}
	}
	r2, err := p.RSquared(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r2, 1, 1e-9) {
		t.Errorf("R^2 = %v, want 1", r2)
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	p, err := PolyFit([]float64{1, 2, 3}, []float64{4, 6, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p.Coeffs[0], 6, 1e-9) {
		t.Errorf("constant fit = %v, want 6 (mean)", p.Coeffs[0])
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("too few points should error")
	}
}

func TestPolynomialEvalHorner(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, -2, 0.5}}
	// 1 - 2*3 + 0.5*9 = -0.5
	if got := p.Eval(3); !almostEq(got, -0.5, 1e-12) {
		t.Errorf("Eval(3) = %v, want -0.5", got)
	}
}

func TestDerivative(t *testing.T) {
	p := Polynomial{Coeffs: []float64{5, 3, 2}} // 5 + 3x + 2x^2
	d := p.Derivative()                         // 3 + 4x
	if len(d.Coeffs) != 2 || d.Coeffs[0] != 3 || d.Coeffs[1] != 4 {
		t.Errorf("Derivative = %v", d.Coeffs)
	}
	c := Polynomial{Coeffs: []float64{7}}
	if dc := c.Derivative(); dc.Eval(10) != 0 {
		t.Error("derivative of constant should be 0")
	}
}

func TestMonotoneIncreasingOn(t *testing.T) {
	inc := Polynomial{Coeffs: []float64{0, 1, 1}} // x + x^2, increasing for x >= 0
	if !inc.MonotoneIncreasingOn(0, 10) {
		t.Error("x + x^2 should be monotone increasing on [0,10]")
	}
	if inc.MonotoneIncreasingOn(-10, 0) {
		t.Error("x + x^2 is not monotone increasing on [-10,0]")
	}
	// Reversed bounds are normalised.
	if !inc.MonotoneIncreasingOn(10, 0) {
		t.Error("reversed bounds should behave like (0,10)")
	}
}

func TestPolynomialString(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, -2, 3}}
	s := p.String()
	if !strings.Contains(s, "x^2") || !strings.Contains(s, " - 2*x") {
		t.Errorf("String() = %q", s)
	}
	if (Polynomial{}).String() != "0" {
		t.Errorf("empty polynomial String() = %q, want 0", (Polynomial{}).String())
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(4.0 / 3.0)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := RMSE(nil, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestPolyFitNoisyQuadraticShape(t *testing.T) {
	// The Fig. 4 use case: noisy monotone quadratic-ish data must produce a
	// fit that is monotone increasing over the data range.
	rng := NewRNG(6)
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Uniform(1, 3)
		xs = append(xs, x)
		ys = append(ys, 0.5+0.8*x+0.2*x*x+rng.Normal(0, 0.05))
	}
	p, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.MonotoneIncreasingOn(1, 3) {
		t.Errorf("fit %v not monotone increasing on data range", p)
	}
	r2, _ := p.RSquared(xs, ys)
	if r2 < 0.9 {
		t.Errorf("R^2 = %v, want > 0.9", r2)
	}
}

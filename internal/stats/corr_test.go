package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("Pearson of single pair should error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone but highly non-linear: Spearman must be exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", r)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAutocorrelation(t *testing.T) {
	// White noise should have near-zero ACF beyond lag 0.
	rng := NewRNG(1)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
	}
	acf, err := Autocorrelation(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Errorf("ACF(0) = %v, want 1", acf[0])
	}
	for lag := 1; lag <= 5; lag++ {
		if math.Abs(acf[lag]) > 0.06 {
			t.Errorf("white-noise ACF(%d) = %v, want ~0", lag, acf[lag])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with phi=0.8: ACF(k) ~= 0.8^k.
	rng := NewRNG(2)
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + rng.Normal(0, 1)
	}
	acf, err := Autocorrelation(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		want := math.Pow(0.8, float64(k))
		if math.Abs(acf[k]-want) > 0.05 {
			t.Errorf("AR(1) ACF(%d) = %v, want ~%v", k, acf[k], want)
		}
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	acf, err := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant ACF = %v", acf)
	}
}

func TestPACFAR1(t *testing.T) {
	// For an AR(1) process the PACF cuts off after lag 1.
	rng := NewRNG(3)
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.7*xs[i-1] + rng.Normal(0, 1)
	}
	pacf, err := PACF(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[0]-0.7) > 0.05 {
		t.Errorf("PACF(1) = %v, want ~0.7", pacf[0])
	}
	for lag := 2; lag <= 4; lag++ {
		if math.Abs(pacf[lag-1]) > 0.05 {
			t.Errorf("AR(1) PACF(%d) = %v, want ~0", lag, pacf[lag-1])
		}
	}
}

func TestCrossCorrelation(t *testing.T) {
	// y is x delayed by 2 ticks: peak cross-correlation at lag 2.
	rng := NewRNG(4)
	n := 5000
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	y := make([]float64, n)
	for i := 2; i < n; i++ {
		y[i] = x[i-2]
	}
	cc, err := CrossCorrelation(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for lag := 1; lag <= 4; lag++ {
		if math.Abs(cc[lag]) > math.Abs(cc[best]) {
			best = lag
		}
	}
	if best != 2 {
		t.Errorf("peak cross-correlation at lag %d (%v), want 2", best, cc)
	}
}

func TestAutocovarianceErrors(t *testing.T) {
	if _, err := Autocovariance(nil, 0); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := Autocovariance([]float64{1, 2}, 2); err == nil {
		t.Error("maxLag >= n should error")
	}
}

// Property: Pearson correlation is symmetric and bounded in [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		half := len(raw) / 2
		xs, ys := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(r1, r2, 1e-9) && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms of
// either variable.
func TestSpearmanMonotoneInvarianceProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		half := len(raw) / 2
		xs, ys := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 20 {
				return true
			}
		}
		r1, err := Spearman(xs, ys)
		if err != nil {
			return false
		}
		exp := make([]float64, len(xs))
		for i, x := range xs {
			exp[i] = math.Exp(x) // strictly monotone
		}
		r2, err := Spearman(exp, ys)
		if err != nil {
			return false
		}
		return almostEq(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

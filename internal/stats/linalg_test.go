package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, err := SolveLinear(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 2}}
	b := []float64{2, 4}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != 2 || b[0] != 2 || b[1] != 4 {
		t.Error("SolveLinear mutated its inputs")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 3 + 2x fit from noiseless data must recover coefficients.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		xi := float64(i)
		x = append(x, []float64{1, xi})
		y = append(y, 3+2*xi)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 3, 1e-6) || !almostEq(beta[1], 2, 1e-6) {
		t.Errorf("beta = %v, want [3 2]", beta)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := NewRNG(5)
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		xi := rng.Uniform(-5, 5)
		x = append(x, []float64{1, xi})
		y = append(y, 1.5-0.5*xi+rng.Normal(0, 0.1))
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-1.5) > 0.02 || math.Abs(beta[1]+0.5) > 0.02 {
		t.Errorf("beta = %v, want ~[1.5 -0.5]", beta)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("1 observation for 2 coefficients should error")
	}
}

func TestSolveToeplitzMatchesDense(t *testing.T) {
	// r defines a positive-definite symmetric Toeplitz matrix.
	r := []float64{4, 1.5, 0.5, 0.1}
	b := []float64{1, 2, 3, 4}
	n := len(b)
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		for j := range dense[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			dense[i][j] = r[d]
		}
	}
	want, err := SolveLinear(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveToeplitz(r, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-8) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveToeplitzErrors(t *testing.T) {
	if _, err := SolveToeplitz([]float64{0, 0}, []float64{1, 1}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	if _, err := SolveToeplitz([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("short autocovariance should error")
	}
	if _, err := SolveToeplitz(nil, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

// Property: for random well-conditioned diagonally dominant systems,
// SolveLinear produces a solution with small residual.
func TestSolveLinearResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			var rowSum float64
			for j := range a[i] {
				if i != j {
					a[i][j] = rng.Uniform(-1, 1)
					rowSum += math.Abs(a[i][j])
				}
			}
			a[i][i] = rowSum + 1 + rng.Float64() // diagonally dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Uniform(-10, 10)
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package stats

import "math"

// This file holds the streaming change-point detectors behind the invariant
// lifecycle: tiny constant-state tests that decide, one observation at a
// time, whether the mean of a series has shifted upward. The invariant
// layer feeds them per-edge violation indicators (0/1 per diagnosed
// window); a persistent upward shift of the violation rate over its
// training-time expectation is the signature of a drifted invariant, as
// opposed to the short bursts a genuine fault produces.

// CUSUM is a one-sided cumulative-sum detector for an upward mean shift.
// Each observation adds (x − drift) to an accumulator clamped at zero; the
// detector alarms when the accumulator exceeds threshold. drift is the
// tolerated mean (observations at or below it never accumulate), threshold
// trades detection delay against false alarms: a series persistently at
// mean m > drift alarms after about threshold/(m − drift) observations,
// while isolated excursions drain back at drift per quiet observation.
//
// The zero value is unusable; construct with NewCUSUM. Not safe for
// concurrent use.
type CUSUM struct {
	drift     float64
	threshold float64
	sum       float64
}

// NewCUSUM returns a one-sided CUSUM with the given tolerated drift and
// alarm threshold (both must be finite; threshold must be positive).
func NewCUSUM(drift, threshold float64) *CUSUM {
	if math.IsNaN(drift) || math.IsInf(drift, 0) {
		drift = 0
	}
	if !(threshold > 0) || math.IsInf(threshold, 0) {
		threshold = 1
	}
	return &CUSUM{drift: drift, threshold: threshold}
}

// Offer feeds one observation and reports whether the detector is in alarm
// after it. Non-finite observations are ignored. The accumulator keeps
// integrating past the threshold, so Offer keeps returning true until
// Reset; callers that quarantine on first alarm simply stop offering.
func (c *CUSUM) Offer(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return c.sum > c.threshold
	}
	c.sum += x - c.drift
	if c.sum < 0 {
		c.sum = 0
	}
	return c.sum > c.threshold
}

// Value returns the current accumulator — the evidence of an upward shift
// collected so far, in the same units as the observations.
func (c *CUSUM) Value() float64 { return c.sum }

// Alarming reports whether the accumulator currently exceeds the threshold.
func (c *CUSUM) Alarming() bool { return c.sum > c.threshold }

// Reset clears the accumulator.
func (c *CUSUM) Reset() { c.sum = 0 }

// Restore sets the accumulator directly — used when resuming a persisted
// detector. Negative or non-finite values clamp to zero.
func (c *CUSUM) Restore(sum float64) {
	if math.IsNaN(sum) || math.IsInf(sum, 0) || sum < 0 {
		sum = 0
	}
	c.sum = sum
}

// PageHinkley is the Page-Hinkley test for an upward mean shift: it tracks
// the running mean of the series and accumulates the deviations of each
// observation above (mean + delta); an alarm fires when the accumulated
// deviation rises more than lambda above its historical minimum. Unlike
// CUSUM it needs no a-priori baseline — the running mean is the baseline —
// which suits series whose normal level is nonzero but unknown.
//
// The zero value is unusable; construct with NewPageHinkley. Not safe for
// concurrent use.
type PageHinkley struct {
	delta  float64
	lambda float64
	n      int64
	mean   float64
	acc    float64
	min    float64
}

// NewPageHinkley returns a Page-Hinkley test with magnitude tolerance
// delta and alarm threshold lambda (lambda must be positive).
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	if math.IsNaN(delta) || math.IsInf(delta, 0) || delta < 0 {
		delta = 0
	}
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		lambda = 1
	}
	return &PageHinkley{delta: delta, lambda: lambda}
}

// Offer feeds one observation and reports whether the test is in alarm
// after it. Non-finite observations are ignored.
func (p *PageHinkley) Offer(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return p.acc-p.min > p.lambda
	}
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.acc += x - p.mean - p.delta
	if p.acc < p.min {
		p.min = p.acc
	}
	return p.acc-p.min > p.lambda
}

// Value returns the current test statistic (accumulator minus its minimum).
func (p *PageHinkley) Value() float64 { return p.acc - p.min }

// Reset clears all state, forgetting the learned mean.
func (p *PageHinkley) Reset() {
	p.n, p.mean, p.acc, p.min = 0, 0, 0, 0
}

package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// Forking a child must not perturb the parent stream relative to a
	// parent that forked a child with a different id.
	a := NewRNG(42)
	b := NewRNG(42)
	ca := a.Fork(1)
	cb := b.Fork(2)
	if ca.Float64() == cb.Float64() {
		t.Error("children with different ids should diverge")
	}
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("forking must consume the same parent state regardless of id")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(7)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Normal(3, 2)
	}
	m := MustMean(xs)
	sd, _ := StdDev(xs)
	if math.Abs(m-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", m)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("sd = %v, want ~2", sd)
	}
}

func TestUniformBounds(t *testing.T) {
	rng := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := rng.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(9)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Exponential(4)
	}
	if m := MustMean(xs); math.Abs(m-4) > 0.15 {
		t.Errorf("mean = %v, want ~4", m)
	}
}

func TestPoisson(t *testing.T) {
	rng := NewRNG(10)
	for _, mean := range []float64{0.5, 3, 50} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(rng.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if rng.Poisson(0) != 0 || rng.Poisson(-1) != 0 {
		t.Error("non-positive mean must yield 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if rng.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be strictly positive")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := NewRNG(12)
	count := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.3) {
			count++
		}
	}
	rate := float64(count) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(13)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

package stats

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic pseudo-random source with the variate generators
// the simulator needs. Every stochastic component in this repository draws
// from an explicitly seeded RNG so that experiments are reproducible
// run-to-run; nothing reads global randomness.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator from this one, labelled by id.
// Forking lets each node / workload / fault own its own stream so that
// adding one more consumer does not perturb the draws seen by the others.
func (g *RNG) Fork(id int64) *RNG {
	// SplitMix64-style scramble of the parent draw and the id.
	z := uint64(g.r.Int63()) ^ (uint64(id) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)); used for heavy-tailed service
// times in the interactive workload mix.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential draw with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Poisson returns a Poisson draw with the given mean (Knuth's algorithm for
// small means, normal approximation above 30). The interactive workload uses
// it for per-tick query arrivals.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(g.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

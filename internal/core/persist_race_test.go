package core

import (
	"fmt"
	"sync"
	"testing"

	"invarnetx/internal/metrics"
	"invarnetx/internal/stats"
)

// TestSaveToRacesTrainAndDiagnose hammers concurrent SaveTo against live
// training and diagnosis across several profiles. SaveTo snapshots each
// profile under its own lock and writes files atomically, so nothing here
// may race (the test exists to run under -race) and every completed SaveTo
// must be loadable — a reader never observes a half-written store.
func TestSaveToRacesTrainAndDiagnose(t *testing.T) {
	const profiles = 4
	const rounds = 6
	dir := t.TempDir()
	cfg := DefaultConfig()
	s := New(cfg)

	ctxs := make([]Context, profiles)
	for i := range ctxs {
		ctxs[i] = Context{Workload: "wordcount", IP: fmt.Sprintf("10.0.0.%d", i+2)}
	}
	// Pre-train half the profiles so diagnosis has models to race against;
	// the rest are trained live during the save storm. Each goroutine gets
	// its own RNG (stats.RNG is not goroutine-safe).
	train := func(ctx Context, rng *stats.RNG) error {
		var runs []*metrics.Trace
		var cpis [][]float64
		for r := 0; r < 6; r++ {
			tr := synthTrace(rng.Fork(int64(r)), traceLen, 8, nil)
			runs = append(runs, tr)
			cpis = append(cpis, tr.CPI)
		}
		if err := s.TrainPerformanceModel(ctx, cpis); err != nil {
			return err
		}
		if err := s.TrainInvariants(ctx, runs); err != nil {
			return err
		}
		return s.BuildSignature(ctx, "race-fault", synthTrace(rng.Fork(99), 40, 8, map[int]bool{0: true, 1: true}))
	}
	for i := 0; i < profiles/2; i++ {
		if err := train(ctxs[i], stats.NewRNG(int64(41+i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup

	// Savers: persist the whole registry repeatedly while it mutates.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := s.SaveTo(dir); err != nil {
					t.Errorf("saver %d round %d: %v", w, r, err)
					return
				}
			}
		}(w)
	}

	// Trainers: bring the remaining profiles up mid-storm, then retrain.
	for i := profiles / 2; i < profiles; i++ {
		wg.Add(1)
		rng := stats.NewRNG(int64(100 + i))
		go func(i int, rng *stats.RNG) {
			defer wg.Done()
			for r := 0; r < 2; r++ {
				if err := train(ctxs[i], rng.Fork(int64(r))); err != nil {
					t.Errorf("trainer %d: %v", i, err)
					return
				}
			}
		}(i, rng)
	}

	// Diagnosers: hit the pre-trained profiles continuously.
	for i := 0; i < profiles/2; i++ {
		wg.Add(1)
		rng := stats.NewRNG(int64(1000 + i))
		go func(i int, rng *stats.RNG) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				abnormal := synthTrace(rng.Fork(int64(r)), 40, 8, map[int]bool{0: true, 1: true})
				if _, err := s.Diagnose(ctxs[i], abnormal); err != nil {
					t.Errorf("diagnoser %d: %v", i, err)
					return
				}
			}
		}(i, rng)
	}

	wg.Wait()

	// A final quiescent save, then the store must load completely.
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	s2 := New(cfg)
	rep, err := s2.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial() {
		t.Fatalf("store written under race is partial: %s", rep)
	}
	if got, want := len(s2.Profiles()), len(s.Profiles()); got != want {
		t.Fatalf("reloaded %d profiles, want %d", got, want)
	}
	if got, want := s2.SignatureCount(), s.SignatureCount(); got != want {
		t.Fatalf("reloaded %d signatures, want %d", got, want)
	}
}

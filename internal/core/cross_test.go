package core

import (
	"strings"
	"testing"

	"invarnetx/internal/metrics"
)

// The cross-profile tests reuse the deterministic value-association harness
// from the lifecycle tests: a joint two-node window is 22 constant rows, so
// which cross edges train, violate, or drift is fixed by the value vector.

// jointVals is the 2×11 joint value vector: every metric at 0.8, with node
// A's first metric (joint index 0) overridden — dropping it breaks exactly
// the 11 spanning pairs (0, j) for j in the node-B half.
func jointVals(m0 float64) []float64 {
	vals := make([]float64, 2*len(CrossMetricIdx))
	for i := range vals {
		vals[i] = 0.8
	}
	vals[0] = m0
	return vals
}

// TestCrossProfilePersistQuarantineRoundTrip is the lifecycle/persistence pin
// for the spatio-temporal layer: a trained cross profile saves and restores
// like any profile (invariants, signatures, verdicts intact), drifted cross
// edges quarantine through the same health machinery, and the quarantined
// state itself survives a restart — after which those edges are unknown,
// never violated, in every verdict.
func TestCrossProfilePersistQuarantineRoundTrip(t *testing.T) {
	cfg := lifecycleConfig(t)
	cfg.AssocCacheSize = -1

	key := NewCrossKey("sort", "10.0.0.3", "10.0.0.2", "shuffle")
	if key.NodeA != "10.0.0.2" || key.NodeB != "10.0.0.3" {
		t.Fatalf("key not canonicalised: %+v", key)
	}

	sys := New(cfg)
	if err := sys.TrainCrossInvariants(key, []*metrics.Trace{valueTrace(jointVals(0.8), 16, 0)}); err != nil {
		t.Fatalf("TrainCrossInvariants: %v", err)
	}
	// 11x11 spanning pairs survive the cross filter; the 2*55 within-node
	// pairs of the joint space belong to the intra-node layer.
	wantEdges := len(CrossMetricIdx) * len(CrossMetricIdx)
	cps := sys.CrossProfileStats()
	if len(cps) != 1 || cps[0].Key != key || cps[0].Edges != wantEdges || cps[0].Quarantined != 0 {
		t.Fatalf("trained cross stats %+v, want 1 profile with %d edges", cps, wantEdges)
	}

	fault := func(tweak float64) *metrics.Trace { return valueTrace(jointVals(0.2), 16, tweak) }
	if err := sys.BuildCrossSignature(key, "xlink@10.0.0.3", fault(0)); err != nil {
		t.Fatalf("BuildCrossSignature: %v", err)
	}

	// Restart: a fresh system restores the cross profile from disk and
	// reproduces the (node, stage) verdict.
	dir := t.TempDir()
	if err := sys.SaveTo(dir); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	sys2 := New(cfg)
	if rep, err := sys2.LoadFrom(dir); err != nil || rep.Partial() {
		t.Fatalf("LoadFrom: %v (report %v)", err, rep)
	}
	cps = sys2.CrossProfileStats()
	if len(cps) != 1 || cps[0].Edges != wantEdges || cps[0].Signatures != 1 {
		t.Fatalf("restored cross stats %+v, want %d edges and 1 signature", cps, wantEdges)
	}
	diag, err := sys2.DiagnoseCross(key, fault(1e-3))
	if err != nil {
		t.Fatalf("DiagnoseCross after restore: %v", err)
	}
	if len(diag.Hints) != len(CrossMetricIdx) {
		t.Fatalf("restored diagnosis hints %v, want the %d spanning pairs of the dropped metric", diag.Hints, len(CrossMetricIdx))
	}
	v := MergeCrossDiagnoses([]*Diagnosis{diag})
	if v == nil || v.Problem != "xlink" || v.Node != "10.0.0.3" || v.Stage != "shuffle" || v.Score <= 0 {
		t.Fatalf("restored verdict %+v, want xlink@10.0.0.3 in shuffle", v)
	}

	// Persistent drift on the same metric: the 11 affected cross edges ride
	// the health series into quarantine.
	quarantined := 0
	for i := 0; i < 12 && quarantined == 0; i++ {
		if _, err := sys2.Violations(key.Context(), fault(float64(2+i)*1e-6)); err != nil {
			t.Fatalf("drift window %d: %v", i, err)
		}
		quarantined = sys2.CrossProfileStats()[0].Quarantined
	}
	if quarantined != len(CrossMetricIdx) {
		t.Fatalf("quarantined %d cross edges, want %d", quarantined, len(CrossMetricIdx))
	}
	if st := sys2.CrossStats(); st.Profiles != 1 || st.Quarantined != quarantined || st.Edges != wantEdges {
		t.Fatalf("CrossStats totals %+v diverge from the profile snapshot", st)
	}

	// Second restart, mid-quarantine: the quarantine map comes back, and the
	// quarantined edges are absent from verdicts — unknown, never violated.
	dir2 := t.TempDir()
	if err := sys2.SaveTo(dir2); err != nil {
		t.Fatalf("SaveTo mid-quarantine: %v", err)
	}
	sys3 := New(cfg)
	if rep, err := sys3.LoadFrom(dir2); err != nil || rep.Partial() {
		t.Fatalf("LoadFrom mid-quarantine: %v (report %v)", err, rep)
	}
	if got := sys3.CrossProfileStats()[0].Quarantined; got != quarantined {
		t.Fatalf("restored %d quarantined cross edges, want %d", got, quarantined)
	}
	diag3, err := sys3.DiagnoseCross(key, fault(0.5))
	if err != nil {
		t.Fatalf("DiagnoseCross mid-quarantine: %v", err)
	}
	if len(diag3.Hints) != 0 {
		t.Fatalf("quarantined cross edges still violated: %v", diag3.Hints)
	}
	if len(diag3.Unknown) != quarantined || diag3.Coverage >= 1 {
		t.Fatalf("quarantined edges not surfaced as unknown: %d unknown, coverage %v", len(diag3.Unknown), diag3.Coverage)
	}
	for _, u := range diag3.Unknown {
		if !strings.Contains(u, "@"+key.NodeA) && !strings.Contains(u, "@"+key.NodeB) {
			t.Fatalf("unknown pair %q not named in cross coordinates", u)
		}
	}
}

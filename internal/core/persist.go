package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"invarnetx/internal/xmlstore"
)

// File layout used by SaveTo/LoadFrom: one XML file per trained artefact,
// named by operation context — each profile saves and restores its own
// slice of the store, so persistence is partial and concurrent by
// construction.
//
//	<dir>/model-<workload>-<ip>.xml
//	<dir>/invariants-<workload>-<ip>.xml
//	<dir>/signatures-<workload>-<ip>.xml
//	<dir>/lifecycle-<workload>-<ip>.xml   (drift lifecycle, when enabled)
//
// Legacy stores with a single combined signatures.xml still load: entries
// route to profiles by their per-entry context fields either way.
//
// The paper stores each model and invariant set "in an XML file"; this
// mirrors that and makes the offline training results reusable across
// process restarts.

// ctxFileToken encodes a context field for use in a file name. Characters
// that are path separators or glob metacharacters on any supported
// platform ('/', '\', '*', '?', ':') — plus '%' itself — are
// percent-escaped, so a hostile or merely unusual workload name cannot
// escape the store directory or collide with shell expansion. The empty
// field encodes as "global" (the no-context profile).
func ctxFileToken(s string) string {
	if s == "" {
		return "global"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '%', '*', '?', '/', '\\', ':':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// decodeCtxFileToken inverts ctxFileToken.
func decodeCtxFileToken(tok string) (string, error) {
	if tok == "global" {
		return "", nil
	}
	var b strings.Builder
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(tok) {
			return "", fmt.Errorf("core: truncated escape in token %q", tok)
		}
		var v byte
		if _, err := fmt.Sscanf(tok[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("core: bad escape in token %q: %w", tok, err)
		}
		b.WriteByte(v)
		i += 2
	}
	return b.String(), nil
}

func modelPath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("model-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func invariantPath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("invariants-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func signaturePath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("signatures-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func lifecyclePath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("lifecycle-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

// SaveTo writes the profile's trained model, invariant set and signatures
// into dir (created if needed). Each file is written atomically (temp +
// rename), so a crash mid-save leaves the previous complete store in place
// rather than a truncated one; untrained artefacts write nothing.
func (p *Profile) SaveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Snapshot under the read lock, write files outside it: persistence
	// I/O must not block this profile's online path.
	p.mu.RLock()
	d, set := p.detector, p.invariants
	var sigFile *xmlstore.SignatureFile
	if p.sigs.Len() > 0 {
		f := xmlstore.EncodeSignaturesFor(&p.sigs, p.key.IP, p.key.Workload)
		sigFile = &f
	}
	p.mu.RUnlock()
	if d != nil {
		f := xmlstore.EncodeModel(d, p.key.IP, p.key.Workload)
		if err := xmlstore.SaveFile(modelPath(dir, p.key), f); err != nil {
			return fmt.Errorf("core: saving model %v: %w", p.key, err)
		}
	}
	if set != nil {
		f := xmlstore.EncodeInvariants(set, p.key.IP, p.key.Workload)
		if err := xmlstore.SaveFile(invariantPath(dir, p.key), f); err != nil {
			return fmt.Errorf("core: saving invariants %v: %w", p.key, err)
		}
	}
	if sigFile != nil {
		if err := xmlstore.SaveFile(signaturePath(dir, p.key), *sigFile); err != nil {
			return fmt.Errorf("core: saving signatures %v: %w", p.key, err)
		}
	}
	// The lifecycle file is written after the invariants file it describes
	// (and fingerprints). A crash between the two leaves the pair
	// inconsistent in at most one direction, which restoreLifecycle detects
	// and resolves toward the invariants file — always a complete,
	// consistent generation.
	if lf, ok := p.lifecycleFile(); ok {
		if err := xmlstore.SaveFile(lifecyclePath(dir, p.key), lf); err != nil {
			return fmt.Errorf("core: saving lifecycle %v: %w", p.key, err)
		}
	}
	return nil
}

// SaveTo persists every profile into dir (created if needed). Profiles save
// concurrently — each holds only its own lock — and every file is written
// atomically. The first error is returned, but every profile still gets its
// save attempt, so one bad artefact does not abandon the rest of the store.
func (s *System) SaveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	profiles := s.Profiles()
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p *Profile) {
			defer wg.Done()
			errs[i] = p.SaveTo(dir)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SkippedFile records one store file LoadFrom could not recover.
type SkippedFile struct {
	Name string
	Err  error
}

// LoadReport summarises a LoadFrom: how many artefacts were recovered and
// which files were skipped as corrupt or unreadable.
type LoadReport struct {
	Models     int
	Invariants int
	Signatures int
	Lifecycles int
	Skipped    []SkippedFile
}

// Partial reports whether any store file had to be skipped.
func (r *LoadReport) Partial() bool { return len(r.Skipped) > 0 }

func (r *LoadReport) String() string {
	s := fmt.Sprintf("loaded %d models, %d invariant sets, %d signatures",
		r.Models, r.Invariants, r.Signatures)
	if r.Lifecycles > 0 {
		s += fmt.Sprintf(", %d lifecycle states", r.Lifecycles)
	}
	if r.Partial() {
		names := make([]string, len(r.Skipped))
		for i, sk := range r.Skipped {
			names[i] = sk.Name
		}
		s += fmt.Sprintf("; skipped %d corrupt files (%s)", len(r.Skipped), strings.Join(names, ", "))
	}
	return s
}

// LoadFrom restores models, invariants and signatures previously written by
// SaveTo (per-profile files, or a legacy combined signatures.xml). Loaded
// artefacts replace in-memory ones in the profile of the same context; on a
// no-context system everything lands in the single global profile.
//
// Recovery is per-file: a truncated, empty, malformed or newer-versioned
// file is skipped and reported in the returned LoadReport instead of
// failing the whole load — after a crash or a partial copy, everything
// still intact comes back. The error return is reserved for dir-level
// failures (the directory itself unreadable).
func (s *System) LoadFrom(dir string) (*LoadReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rep := &LoadReport{}
	skip := func(name string, err error) {
		rep.Skipped = append(rep.Skipped, SkippedFile{Name: name, Err: err})
	}
	// Lifecycle files attach to invariants loaded from the same directory,
	// so they are collected during the scan and applied in a post-pass —
	// correctness must not hinge on ReadDir's name ordering.
	type pendingLifecycle struct {
		name string
		f    xmlstore.LifecycleFile
	}
	var lifecycles []pendingLifecycle
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.ModelFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			d, err := f.Decode()
			if err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			s.Profile(loadedCtx(f.Type, f.IP)).setDetector(d)
			rep.Models++
		case strings.HasPrefix(name, "invariants-") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.InvariantFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			set, err := f.Decode()
			if err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			s.Profile(loadedCtx(f.Type, f.IP)).setInvariants(set)
			rep.Invariants++
		case strings.HasPrefix(name, "lifecycle-") && strings.HasSuffix(name, ".xml"):
			if !s.cfg.Lifecycle.Enabled {
				continue // train-once deployment: lifecycle state is inert
			}
			var f xmlstore.LifecycleFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			if err := f.Validate(); err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			lifecycles = append(lifecycles, pendingLifecycle{name: name, f: f})
		case strings.HasPrefix(name, "signatures") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.SignatureFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			db, err := f.Decode()
			if err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			for _, entry := range db.Entries() {
				// Merge, not append: a store holding both a legacy combined
				// signatures.xml and per-profile files must not double-load
				// the overlap.
				if s.Profile(loadedCtx(entry.Workload, entry.IP)).mergeSignature(entry) {
					rep.Signatures++
				}
			}
		}
	}
	for _, pl := range lifecycles {
		p, ok := s.lookup(loadedCtx(pl.f.Type, pl.f.IP))
		if !ok {
			skip(pl.name, fmt.Errorf("core: lifecycle state %s has no loaded profile", pl.name))
			continue
		}
		applied, err := p.restoreLifecycle(&pl.f)
		if err != nil {
			skip(pl.name, fmt.Errorf("core: restoring %s: %w", pl.name, err))
			continue
		}
		if applied {
			rep.Lifecycles++
		}
	}
	return rep, nil
}

// loadedCtx rebuilds a profile key from persisted fields.
func loadedCtx(workloadType, ip string) Context {
	return Context{Workload: workloadType, IP: ip}
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"invarnetx/internal/xmlstore"
)

// File layout used by SaveTo/LoadFrom: one XML file per trained artefact,
// named by operation context, plus a single signature database.
//
//	<dir>/model-<workload>-<ip>.xml
//	<dir>/invariants-<workload>-<ip>.xml
//	<dir>/signatures.xml
//
// The paper stores each model and invariant set "in an XML file"; this
// mirrors that and makes the offline training results reusable across
// process restarts.

// ctxFileToken encodes a context field for use in a file name. Characters
// that are path separators or glob metacharacters on any supported
// platform ('/', '\', '*', '?', ':') — plus '%' itself — are
// percent-escaped, so a hostile or merely unusual workload name cannot
// escape the store directory or collide with shell expansion. The empty
// field encodes as "global" (the no-context profile).
func ctxFileToken(s string) string {
	if s == "" {
		return "global"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '%', '*', '?', '/', '\\', ':':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// decodeCtxFileToken inverts ctxFileToken.
func decodeCtxFileToken(tok string) (string, error) {
	if tok == "global" {
		return "", nil
	}
	var b strings.Builder
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(tok) {
			return "", fmt.Errorf("core: truncated escape in token %q", tok)
		}
		var v byte
		if _, err := fmt.Sscanf(tok[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("core: bad escape in token %q: %w", tok, err)
		}
		b.WriteByte(v)
		i += 2
	}
	return b.String(), nil
}

func modelPath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("model-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func invariantPath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("invariants-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func signaturePath(dir string) string {
	return filepath.Join(dir, "signatures.xml")
}

// SaveTo writes every trained model, invariant set and the signature
// database into dir (created if needed). Each file is written atomically
// (temp + rename), so a crash mid-save leaves the previous complete store
// in place rather than a truncated one.
func (s *System) SaveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for ctx, d := range s.detectors {
		f := xmlstore.EncodeModel(d, ctx.IP, ctx.Workload)
		if err := xmlstore.SaveFile(modelPath(dir, ctx), f); err != nil {
			return fmt.Errorf("core: saving model %v: %w", ctx, err)
		}
	}
	for ctx, set := range s.invariants {
		f := xmlstore.EncodeInvariants(set, ctx.IP, ctx.Workload)
		if err := xmlstore.SaveFile(invariantPath(dir, ctx), f); err != nil {
			return fmt.Errorf("core: saving invariants %v: %w", ctx, err)
		}
	}
	if err := xmlstore.SaveFile(signaturePath(dir), xmlstore.EncodeSignatures(&s.sigs)); err != nil {
		return fmt.Errorf("core: saving signatures: %w", err)
	}
	return nil
}

// SkippedFile records one store file LoadFrom could not recover.
type SkippedFile struct {
	Name string
	Err  error
}

// LoadReport summarises a LoadFrom: how many artefacts were recovered and
// which files were skipped as corrupt or unreadable.
type LoadReport struct {
	Models     int
	Invariants int
	Signatures int
	Skipped    []SkippedFile
}

// Partial reports whether any store file had to be skipped.
func (r *LoadReport) Partial() bool { return len(r.Skipped) > 0 }

func (r *LoadReport) String() string {
	s := fmt.Sprintf("loaded %d models, %d invariant sets, %d signatures",
		r.Models, r.Invariants, r.Signatures)
	if r.Partial() {
		names := make([]string, len(r.Skipped))
		for i, sk := range r.Skipped {
			names[i] = sk.Name
		}
		s += fmt.Sprintf("; skipped %d corrupt files (%s)", len(r.Skipped), strings.Join(names, ", "))
	}
	return s
}

// LoadFrom restores models, invariants and signatures previously written by
// SaveTo. Loaded artefacts replace in-memory ones with the same context.
//
// Recovery is per-file: a truncated, empty, malformed or newer-versioned
// file is skipped and reported in the returned LoadReport instead of
// failing the whole load — after a crash or a partial copy, everything
// still intact comes back. The error return is reserved for dir-level
// failures (the directory itself unreadable).
func (s *System) LoadFrom(dir string) (*LoadReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rep := &LoadReport{}
	skip := func(name string, err error) {
		rep.Skipped = append(rep.Skipped, SkippedFile{Name: name, Err: err})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.ModelFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			d, err := f.Decode()
			if err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			s.detectors[loadedCtx(f.Type, f.IP)] = d
			rep.Models++
		case strings.HasPrefix(name, "invariants-") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.InvariantFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			set, err := f.Decode()
			if err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			s.invariants[loadedCtx(f.Type, f.IP)] = set
			rep.Invariants++
		case name == "signatures.xml":
			var f xmlstore.SignatureFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				skip(name, fmt.Errorf("core: loading %s: %w", name, err))
				continue
			}
			db, err := f.Decode()
			if err != nil {
				skip(name, fmt.Errorf("core: decoding %s: %w", name, err))
				continue
			}
			for _, entry := range db.Entries() {
				s.sigs.Add(entry)
				rep.Signatures++
			}
		}
	}
	return rep, nil
}

// loadedCtx rebuilds a storage key from persisted fields.
func loadedCtx(workloadType, ip string) Context {
	return Context{Workload: workloadType, IP: ip}
}

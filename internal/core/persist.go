package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"invarnetx/internal/xmlstore"
)

// File layout used by SaveTo/LoadFrom: one XML file per trained artefact,
// named by operation context, plus a single signature database.
//
//	<dir>/model-<workload>-<ip>.xml
//	<dir>/invariants-<workload>-<ip>.xml
//	<dir>/signatures.xml
//
// The paper stores each model and invariant set "in an XML file"; this
// mirrors that and makes the offline training results reusable across
// process restarts.

// ctxFileToken encodes a context field for use in a file name.
func ctxFileToken(s string) string {
	if s == "" {
		return "global"
	}
	return strings.ReplaceAll(s, string(os.PathSeparator), "_")
}

func modelPath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("model-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func invariantPath(dir string, ctx Context) string {
	return filepath.Join(dir, fmt.Sprintf("invariants-%s-%s.xml", ctxFileToken(ctx.Workload), ctxFileToken(ctx.IP)))
}

func signaturePath(dir string) string {
	return filepath.Join(dir, "signatures.xml")
}

// SaveTo writes every trained model, invariant set and the signature
// database into dir (created if needed).
func (s *System) SaveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for ctx, d := range s.detectors {
		f := xmlstore.EncodeModel(d, ctx.IP, ctx.Workload)
		if err := xmlstore.SaveFile(modelPath(dir, ctx), f); err != nil {
			return fmt.Errorf("core: saving model %v: %w", ctx, err)
		}
	}
	for ctx, set := range s.invariants {
		f := xmlstore.EncodeInvariants(set, ctx.IP, ctx.Workload)
		if err := xmlstore.SaveFile(invariantPath(dir, ctx), f); err != nil {
			return fmt.Errorf("core: saving invariants %v: %w", ctx, err)
		}
	}
	if err := xmlstore.SaveFile(signaturePath(dir), xmlstore.EncodeSignatures(&s.sigs)); err != nil {
		return fmt.Errorf("core: saving signatures: %w", err)
	}
	return nil
}

// LoadFrom restores models, invariants and signatures previously written by
// SaveTo. Loaded artefacts replace in-memory ones with the same context.
func (s *System) LoadFrom(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.ModelFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				return fmt.Errorf("core: loading %s: %w", name, err)
			}
			d, err := f.Decode()
			if err != nil {
				return fmt.Errorf("core: decoding %s: %w", name, err)
			}
			s.detectors[loadedCtx(f.Type, f.IP)] = d
		case strings.HasPrefix(name, "invariants-") && strings.HasSuffix(name, ".xml"):
			var f xmlstore.InvariantFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				return fmt.Errorf("core: loading %s: %w", name, err)
			}
			set, err := f.Decode()
			if err != nil {
				return fmt.Errorf("core: decoding %s: %w", name, err)
			}
			s.invariants[loadedCtx(f.Type, f.IP)] = set
		case name == "signatures.xml":
			var f xmlstore.SignatureFile
			if err := xmlstore.LoadFile(full, &f); err != nil {
				return fmt.Errorf("core: loading %s: %w", name, err)
			}
			db, err := f.Decode()
			if err != nil {
				return fmt.Errorf("core: decoding %s: %w", name, err)
			}
			for _, entry := range db.Entries() {
				s.sigs.Add(entry)
			}
		}
	}
	return nil
}

// loadedCtx rebuilds a storage key from persisted fields.
func loadedCtx(workloadType, ip string) Context {
	return Context{Workload: workloadType, IP: ip}
}

package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"invarnetx/internal/metrics"
	"invarnetx/internal/signature"
	"invarnetx/internal/stats"
)

// synthTrace builds a metrics.Trace whose first `coupled` rows are noisy
// functions of one latent load series and whose remaining rows are
// independent noise. decouple lists row indices to break (replace with
// fresh noise) — simulating a fault that detaches those metrics.
func synthTrace(rng *stats.RNG, length, coupled int, decouple map[int]bool) *metrics.Trace {
	tr := metrics.NewTrace("10.0.0.2", "wordcount")
	latent := make([]float64, length)
	for t := range latent {
		latent[t] = rng.Uniform(0, 1)
	}
	for t := 0; t < length; t++ {
		row := make([]float64, metrics.Count)
		for m := 0; m < metrics.Count; m++ {
			switch {
			case decouple[m]:
				row[m] = rng.Uniform(0, 1)
			case m < coupled:
				row[m] = float64(m+1)*latent[t] + 0.1 + rng.Normal(0, 0.02)
			default:
				row[m] = rng.Uniform(0, 1)
			}
		}
		cpiVal := 1.0 + 0.3*latent[t] + rng.Normal(0, 0.02)
		if err := tr.Add(row, cpiVal); err != nil {
			panic(err)
		}
	}
	return tr
}

const traceLen = 100

func trainSystem(t *testing.T, cfg Config, ctx Context, seed int64) *System {
	t.Helper()
	s := New(cfg)
	rng := stats.NewRNG(seed)
	var runs []*metrics.Trace
	var cpis [][]float64
	for i := 0; i < 6; i++ {
		tr := synthTrace(rng.Fork(int64(i)), traceLen, 8, nil)
		runs = append(runs, tr)
		cpis = append(cpis, tr.CPI)
	}
	if err := s.TrainPerformanceModel(ctx, cpis); err != nil {
		t.Fatal(err)
	}
	if err := s.TrainInvariants(ctx, runs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrainingProducesInvariants(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 600)
	set, err := s.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The 8 coupled rows form C(8,2)=28 strongly associated pairs; all of
	// them should be stable invariants. Some noise-noise pairs may also be
	// stably low — that is fine and realistic.
	if set.Len() < 28 {
		t.Errorf("invariants = %d, want >= 28", set.Len())
	}
	if _, err := s.Detector(ctx); err != nil {
		t.Errorf("detector missing: %v", err)
	}
}

func TestUntrainedContextErrors(t *testing.T) {
	s := New(DefaultConfig())
	ctx := Context{Workload: "sort", IP: "10.0.0.9"}
	if _, err := s.Detector(ctx); !errors.Is(err, ErrNoModel) {
		t.Errorf("err = %v, want ErrNoModel", err)
	}
	if _, err := s.Invariants(ctx); !errors.Is(err, ErrNoInvariants) {
		t.Errorf("err = %v, want ErrNoInvariants", err)
	}
	if _, err := s.NewMonitor(ctx, nil); err == nil {
		t.Error("monitor without model should error")
	}
	if _, err := s.Violations(ctx, synthTrace(stats.NewRNG(1), 50, 8, nil)); err == nil {
		t.Error("violation report without invariants should error")
	}
}

func TestDiagnoseRecoversInjectedProblem(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 601)
	rng := stats.NewRNG(602)

	// Two distinct "faults": fault A decouples rows 0-2, fault B rows 5-7.
	faultA := map[int]bool{0: true, 1: true, 2: true}
	faultB := map[int]bool{5: true, 6: true, 7: true}
	if err := s.BuildSignature(ctx, "fault-a", synthTrace(rng.Fork(1), 40, 8, faultA)); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildSignature(ctx, "fault-b", synthTrace(rng.Fork(2), 40, 8, faultB)); err != nil {
		t.Fatal(err)
	}
	if s.SignatureCount() != 2 {
		t.Fatalf("signatures = %d", s.SignatureCount())
	}

	// A fresh occurrence of fault A must rank fault-a first.
	diag, err := s.Diagnose(ctx, synthTrace(rng.Fork(3), 40, 8, faultA))
	if err != nil {
		t.Fatal(err)
	}
	if diag.RootCause() != "fault-a" {
		t.Errorf("root cause = %q, causes = %v", diag.RootCause(), diag.Causes)
	}
	if len(diag.Hints) == 0 {
		t.Error("no hints reported")
	}
	for _, h := range diag.Hints {
		if !strings.Contains(h, "-") {
			t.Errorf("hint %q not a metric pair", h)
		}
	}
}

func TestDiagnoseUnknownProblemGivesHintsOnly(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 603)
	diag, err := s.Diagnose(ctx, synthTrace(stats.NewRNG(604), 40, 8, map[int]bool{0: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Causes) != 0 {
		t.Errorf("causes = %v, want none (empty database)", diag.Causes)
	}
	if diag.RootCause() != "" {
		t.Errorf("RootCause = %q", diag.RootCause())
	}
	if len(diag.Hints) == 0 {
		t.Error("expected hints for the unknown problem")
	}
}

func TestContextScopingSeparatesSignatures(t *testing.T) {
	ctxA := Context{Workload: "wordcount", IP: "10.0.0.2"}
	ctxB := Context{Workload: "wordcount", IP: "10.0.0.3"}
	s := trainSystem(t, DefaultConfig(), ctxA, 605)
	// Train B as well.
	rng := stats.NewRNG(606)
	var runs []*metrics.Trace
	var cpis [][]float64
	for i := 0; i < 6; i++ {
		tr := synthTrace(rng.Fork(int64(i)), traceLen, 8, nil)
		runs = append(runs, tr)
		cpis = append(cpis, tr.CPI)
	}
	if err := s.TrainPerformanceModel(ctxB, cpis); err != nil {
		t.Fatal(err)
	}
	if err := s.TrainInvariants(ctxB, runs); err != nil {
		t.Fatal(err)
	}
	fault := map[int]bool{0: true, 1: true}
	if err := s.BuildSignature(ctxA, "fault-a", synthTrace(rng.Fork(100), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	// Diagnosing on node B must not see node A's signature.
	diag, err := s.Diagnose(ctxB, synthTrace(rng.Fork(101), 40, 8, fault))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Causes) != 0 {
		t.Errorf("context leak: %v", diag.Causes)
	}
}

func TestNoContextPoolsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseContext = false
	ctxA := Context{Workload: "wordcount", IP: "10.0.0.2"}
	ctxB := Context{Workload: "sort", IP: "10.0.0.3"}
	s := trainSystem(t, cfg, ctxA, 607)
	rng := stats.NewRNG(608)
	fault := map[int]bool{0: true, 1: true}
	if err := s.BuildSignature(ctxA, "fault-a", synthTrace(rng.Fork(1), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	// Under no-context, a different context still matches the signature.
	diag, err := s.Diagnose(ctxB, synthTrace(rng.Fork(2), 40, 8, fault))
	if err != nil {
		t.Fatal(err)
	}
	if diag.RootCause() != "fault-a" {
		t.Errorf("no-context diagnosis = %q", diag.RootCause())
	}
	// And its detector is shared.
	if _, err := s.Detector(ctxB); err != nil {
		t.Errorf("no-context detector not shared: %v", err)
	}
}

func TestMonitorIntegration(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 609)
	rng := stats.NewRNG(610)
	normal := synthTrace(rng, traceLen, 8, nil)
	m, err := s.NewMonitor(ctx, normal.CPI[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range normal.CPI[10:] {
		m.Offer(v)
	}
	if m.Alert() {
		t.Error("alert on normal CPI")
	}
	// CPI level shift (e.g. CPU hog doubles stall cycles).
	for i := 0; i < 6; i++ {
		m.Offer(2.5)
	}
	if !m.Alert() {
		t.Error("no alert on shifted CPI")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 611)
	rng := stats.NewRNG(612)
	fault := map[int]bool{3: true, 4: true}
	if err := s.BuildSignature(ctx, "fault-x", synthTrace(rng.Fork(1), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}

	s2 := New(DefaultConfig())
	rep, err := s2.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial() {
		t.Fatalf("clean store loaded partially: %v", rep)
	}
	if s2.SignatureCount() != 1 {
		t.Fatalf("loaded signatures = %d", s2.SignatureCount())
	}
	if _, err := s2.Detector(ctx); err != nil {
		t.Errorf("loaded detector missing: %v", err)
	}
	set1, _ := s.Invariants(ctx)
	set2, err := s2.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if set1.Len() != set2.Len() {
		t.Errorf("invariants %d != %d after reload", set2.Len(), set1.Len())
	}
	// The reloaded system diagnoses like the original.
	occur := synthTrace(rng.Fork(2), 40, 8, fault)
	d1, err := s.Diagnose(ctx, occur)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s2.Diagnose(ctx, occur)
	if err != nil {
		t.Fatal(err)
	}
	if d1.RootCause() != d2.RootCause() {
		t.Errorf("reloaded diagnosis %q != %q", d2.RootCause(), d1.RootCause())
	}
}

func TestLoadFromMissingDir(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.LoadFrom("/nonexistent/dir"); err == nil {
		t.Error("missing dir should error")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.Epsilon != 0.2 || cfg.Tau != 0.2 {
		t.Errorf("defaults: eps=%v tau=%v", cfg.Epsilon, cfg.Tau)
	}
	if cfg.Assoc == nil || cfg.AssocName != "mic" {
		t.Error("association default not applied")
	}
	if cfg.Detect.Beta != 1.2 || cfg.Detect.Consecutive != 3 {
		t.Errorf("detect defaults: %+v", cfg.Detect)
	}
}

func TestTopKLimitsCauses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TopK = 1
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, cfg, ctx, 613)
	rng := stats.NewRNG(614)
	for i, name := range []string{"p1", "p2", "p3"} {
		fault := map[int]bool{i: true}
		if err := s.BuildSignature(ctx, name, synthTrace(rng.Fork(int64(i)), 40, 8, fault)); err != nil {
			t.Fatal(err)
		}
	}
	diag, err := s.Diagnose(ctx, synthTrace(rng.Fork(99), 40, 8, map[int]bool{0: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Causes) > 1 {
		t.Errorf("TopK=1 but %d causes", len(diag.Causes))
	}
}

func TestContextString(t *testing.T) {
	c := Context{Workload: "sort", IP: "10.0.0.5"}
	if c.String() != "sort@10.0.0.5" {
		t.Errorf("String = %q", c.String())
	}
}

func TestDiagnosisTupleMatchesSignature(t *testing.T) {
	// The tuple returned in the diagnosis is the one matched against the
	// database (sanity link between Violations and Diagnose).
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 615)
	ab := synthTrace(stats.NewRNG(616), 40, 8, map[int]bool{2: true})
	rep, err := s.Violations(ctx, ab)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.Diagnose(ctx, ab)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Tuple.String() != signature.Tuple(rep.Tuple).String() {
		t.Error("diagnosis tuple differs from Violations report")
	}
}

func TestConcurrentDiagnosis(t *testing.T) {
	// The centralized server diagnoses many nodes at once; concurrent
	// reads of the trained state must be safe (run with -race).
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 620)
	rng := stats.NewRNG(621)
	fault := map[int]bool{0: true, 1: true}
	if err := s.BuildSignature(ctx, "fault-a", synthTrace(rng.Fork(1), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := stats.NewRNG(int64(700 + g))
			for i := 0; i < 5; i++ {
				if _, err := s.Diagnose(ctx, synthTrace(local.Fork(int64(i)), 40, 8, fault)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Writers add signatures concurrently with readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := stats.NewRNG(int64(800 + g))
			for i := 0; i < 3; i++ {
				if err := s.BuildSignature(ctx, "fault-b", synthTrace(local.Fork(int64(i)), 40, 8, fault)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
)

// The lifecycle tests drive the drift state machine with a deterministic
// association measure: the score of a pair is the average of the two
// metrics' first samples, so a window *is* its scores and every phase of
// the lifecycle (drift, quarantine, shadow convergence, promotion) can be
// produced on demand with exact timing.

func valueAssoc(x, y []float64) float64 { return (x[0] + y[0]) / 2 }

// valueTrace builds a window whose pair scores are fixed by vals; tweak
// perturbs the last sample of metric 0 only, so windows with different
// tweaks have different fingerprints but identical scores.
func valueTrace(vals []float64, n int, tweak float64) *metrics.Trace {
	rows := make([][]float64, len(vals))
	for i, v := range vals {
		rows[i] = make([]float64, n)
		for t := range rows[i] {
			rows[i][t] = v
		}
	}
	rows[0][n-1] += tweak
	return &metrics.Trace{Rows: rows, Ticks: n}
}

// fastLifecycle is a lifecycle tuned so each phase takes a handful of
// windows: quarantine after 4 persistent violations, promotion after 4
// side-by-side evaluations.
func fastLifecycle() LifecycleConfig {
	return LifecycleConfig{
		Enabled:         true,
		MinObservations: 4,
		Drift:           0.2,
		Threshold:       1,
		DecayAlpha:      0.5,
		ShadowMinEvals:  4,
		ShadowMaxEvals:  16,
		PromoteMaxRate:  0.3,
	}
}

func lifecycleConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Assoc = valueAssoc
	cfg.AssocName = "value"
	cfg.BatchAssoc = nil
	cfg.Lifecycle = fastLifecycle()
	return cfg
}

// trainValueSystem trains a 3-metric system where every pair scores 0.8:
// all three pairs become invariants with base 0.8.
func trainValueSystem(t *testing.T, cfg Config, ctx Context) *System {
	t.Helper()
	sys := New(cfg)
	run := valueTrace([]float64{0.8, 0.8, 0.8}, 16, 0)
	if err := sys.TrainInvariants(ctx, []*metrics.Trace{run}); err != nil {
		t.Fatalf("TrainInvariants: %v", err)
	}
	set, err := sys.Profile(ctx).Invariants()
	if err != nil {
		t.Fatalf("Invariants: %v", err)
	}
	if set.Len() != 3 {
		t.Fatalf("trained %d invariants, want 3", set.Len())
	}
	return sys
}

func pairNames(prs []invariant.Pair) []string {
	out := make([]string, len(prs))
	for i, pr := range prs {
		out[i] = pairName(pr)
	}
	return out
}

// TestLifecycleQuarantineAndPromotion walks the full state machine: a
// persistent shift on metric 2 first produces false positives, then
// quarantines the two drifted edges (which must vanish from Violated and
// surface as unknown), then the shadow generation re-estimated from the
// post-shift scores is promoted and the false positives clear — precision
// restored without retraining.
func TestLifecycleQuarantineAndPromotion(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t)
	cfg.AssocCacheSize = -1 // every window recomputed: exact phase timing
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	if g := p.Generation(); g != 1 {
		t.Fatalf("generation after training = %d, want 1", g)
	}

	// Clean traffic: no violations, nothing drifts.
	for i := 0; i < 6; i++ {
		rep, err := p.Violations(valueTrace([]float64{0.8, 0.8, 0.8}, 16, float64(i)*1e-6))
		if err != nil {
			t.Fatalf("clean window %d: %v", i, err)
		}
		if len(rep.Violated) != 0 {
			t.Fatalf("clean window %d violated %v", i, rep.Violated)
		}
	}
	if st := p.LifecycleStats(); st.Quarantined != 0 || st.Promotions != 0 {
		t.Fatalf("clean traffic moved lifecycle state: %+v", st)
	}

	// Metric 2 shifts for good: pairs (0,2) and (1,2) now score 0.5 against
	// base 0.8. The first windows are false positives; the clean warmup
	// already satisfied MinObservations, so the change-point alarm is the
	// binding constraint — two windows of 0.8 excess cross threshold 1.
	drifted := []float64{0.8, 0.8, 0.2}
	quarantinedAt := -1
	promotedAt := -1
	for i := 0; i < 12 && promotedAt < 0; i++ {
		rep, err := p.Violations(valueTrace(drifted, 16, float64(i)*1e-6))
		if err != nil {
			t.Fatalf("drifted window %d: %v", i, err)
		}
		st := p.LifecycleStats()
		switch {
		case st.Promotions > 0:
			promotedAt = i
		case st.Quarantined > 0 && quarantinedAt < 0:
			quarantinedAt = i
			if st.Quarantined != 2 {
				t.Fatalf("window %d: quarantined %d edges, want 2", i, st.Quarantined)
			}
		}
		if quarantinedAt >= 0 {
			// Zero spurious reports from quarantined edges: they are unknown,
			// never violated.
			if len(rep.Violated) != 0 {
				t.Fatalf("window %d: quarantined edges still violated: %v", i, rep.Violated)
			}
			if rep.Known == nil {
				t.Fatalf("window %d: quarantined edges not surfaced as unknown", i)
			}
			unknown := 0
			for _, ok := range rep.Known {
				if !ok {
					unknown++
				}
			}
			if st.Quarantined > 0 && unknown != st.Quarantined {
				t.Fatalf("window %d: %d unknown coordinates, %d quarantined", i, unknown, st.Quarantined)
			}
		} else if len(rep.Violated) != 2 {
			// Pre-quarantine the drifted pairs are live false positives.
			t.Fatalf("window %d: %d violations before quarantine, want 2 (%v)", i, len(rep.Violated), rep.Violated)
		}
	}
	if quarantinedAt != 1 {
		t.Fatalf("quarantined at window %d, want 1 (second alarm-accumulating window)", quarantinedAt)
	}
	if promotedAt < 0 {
		t.Fatalf("shadow generation never promoted")
	}

	st := p.LifecycleStats()
	if st.Promotions != 1 || st.Quarantined != 0 || st.Generation != 2 {
		t.Fatalf("post-promotion stats %+v, want 1 promotion, 0 quarantined, generation 2", st)
	}

	// The promoted generation holds on post-shift traffic: full coverage,
	// no violations — and the Diagnose surface agrees.
	diag, err := p.Diagnose(valueTrace(drifted, 16, 99))
	if err != nil {
		t.Fatalf("post-promotion diagnose: %v", err)
	}
	if len(diag.Hints) != 0 || len(diag.Unknown) != 0 || diag.Coverage != 1 {
		t.Fatalf("post-promotion diagnosis = hints %v unknown %v coverage %v, want clean", diag.Hints, diag.Unknown, diag.Coverage)
	}

	// And a genuine fault against the *new* baselines is still caught.
	rep, err := p.Violations(valueTrace([]float64{0.8, 0.8, 0.9}, 16, 100))
	if err != nil {
		t.Fatalf("fault window: %v", err)
	}
	if len(rep.Violated) != 2 {
		t.Fatalf("fault against promoted baselines: violated %v, want the two re-estimated pairs", pairNames(rep.Violated))
	}
}

// TestLifecycleFaultBurstDoesNotQuarantine distinguishes the two kinds of
// violation the health series must separate: a short fault burst drains
// back out of the change-point accumulator, while only a persistent shift
// quarantines.
func TestLifecycleFaultBurstDoesNotQuarantine(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t)
	cfg.AssocCacheSize = -1
	cfg.Lifecycle.Drift = 0.4 // tolerate bursty faults
	cfg.Lifecycle.Threshold = 2
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	clean := []float64{0.8, 0.8, 0.8}
	fault := []float64{0.8, 0.8, 0.2}
	w := 0
	window := func(vals []float64) *ViolationReport {
		t.Helper()
		rep, err := p.Violations(valueTrace(vals, 16, float64(w)*1e-6))
		w++
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		return rep
	}
	for burst := 0; burst < 5; burst++ {
		for i := 0; i < 2; i++ {
			rep := window(fault)
			if len(rep.Violated) != 2 {
				t.Fatalf("burst fault window reported %v, want 2 violations", rep.Violated)
			}
		}
		for i := 0; i < 6; i++ {
			window(clean)
		}
	}
	if st := p.LifecycleStats(); st.Quarantined != 0 || st.Promotions != 0 {
		t.Fatalf("fault bursts quarantined edges: %+v", st)
	}
}

// TestLifecycleCacheEpochInvalidation pins the report-cache interaction: a
// report cached before a quarantine carries the old verdict surface, and
// the epoch salt must prevent it from ever being served again.
func TestLifecycleCacheEpochInvalidation(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t) // report cache enabled (default size)
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	drifted := []float64{0.8, 0.8, 0.2}
	first := valueTrace(drifted, 16, 0)
	rep, err := p.Violations(first)
	if err != nil {
		t.Fatalf("first drifted window: %v", err)
	}
	if len(rep.Violated) != 2 {
		t.Fatalf("first drifted window violated %v, want 2 pairs", rep.Violated)
	}

	// Identical window re-diagnosed: served from cache (no new observation
	// — an identical window adds no drift information).
	before := p.LifecycleStats().Observed
	rep2, err := p.Violations(valueTrace(drifted, 16, 0))
	if err != nil {
		t.Fatalf("repeat window: %v", err)
	}
	if rep2 != rep {
		t.Fatalf("identical pre-quarantine window not served from cache")
	}
	if after := p.LifecycleStats().Observed; after != before {
		t.Fatalf("cache hit advanced health observation %d -> %d", before, after)
	}

	// Distinct windows until the drifted edges quarantine.
	for i := 1; p.LifecycleStats().Quarantined == 0; i++ {
		if i > 10 {
			t.Fatalf("edges never quarantined")
		}
		if _, err := p.Violations(valueTrace(drifted, 16, float64(i)*1e-6)); err != nil {
			t.Fatalf("drifted window %d: %v", i, err)
		}
	}

	// The first window again, bit-identical content: its cached report says
	// "two violations", but the quarantine bumped the epoch, so the stale
	// verdict must not come back — the recomputed one masks both edges.
	rep3, err := p.Violations(valueTrace(drifted, 16, 0))
	if err != nil {
		t.Fatalf("post-quarantine repeat: %v", err)
	}
	if rep3 == rep {
		t.Fatalf("stale pre-quarantine report served after epoch bump")
	}
	if len(rep3.Violated) != 0 {
		t.Fatalf("post-quarantine repeat violated %v, want quarantined edges masked", rep3.Violated)
	}
	if rep3.Known == nil || rep3.Coverage >= 1 {
		t.Fatalf("post-quarantine repeat did not surface unknowns (coverage %v)", rep3.Coverage)
	}
}

// TestLifecyclePersistRoundTrip saves a profile mid-quarantine and restores
// it into a fresh system: the health and shadow state must come back
// exactly, and the restored shadow must finish converging to a promotion
// just as the original would have.
func TestLifecyclePersistRoundTrip(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t)
	cfg.AssocCacheSize = -1
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	drifted := []float64{0.8, 0.8, 0.2}
	for i := 0; i < 8; i++ {
		if _, err := p.Violations(valueTrace(drifted, 16, float64(i)*1e-6)); err != nil {
			t.Fatalf("drifted window %d: %v", i, err)
		}
	}
	want := p.LifecycleStats()
	if want.Quarantined != 2 || want.Promotions != 0 || want.ShadowAge == 0 {
		t.Fatalf("mid-quarantine stats %+v, want 2 quarantined with shadow progress", want)
	}

	dir := t.TempDir()
	if err := sys.SaveTo(dir); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}

	sys2 := New(cfg)
	rep, err := sys2.LoadFrom(dir)
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if rep.Lifecycles != 1 || rep.Partial() {
		t.Fatalf("load report %v, want 1 lifecycle state and no skips", rep)
	}
	p2 := sys2.Profile(ctx)
	got := p2.LifecycleStats()
	if got.Generation != want.Generation || got.Quarantined != want.Quarantined ||
		got.Observed != want.Observed || got.ShadowAge != want.ShadowAge {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}
	for _, e := range p2.LifecycleEdges() {
		wantState := invariant.EdgeLive
		if e.Pair.J == 2 {
			wantState = invariant.EdgeQuarantined
		}
		if e.State != wantState {
			t.Fatalf("restored edge %v state %v, want %v", e.Pair, e.State, wantState)
		}
	}

	// The restored shadow picks up where the original left off: a few more
	// post-shift windows complete the promotion.
	for i := 8; i < 16 && p2.LifecycleStats().Promotions == 0; i++ {
		if _, err := p2.Violations(valueTrace(drifted, 16, float64(i)*1e-6)); err != nil {
			t.Fatalf("post-restore window %d: %v", i, err)
		}
	}
	st := p2.LifecycleStats()
	if st.Promotions != 1 || st.Generation != want.Generation+1 || st.Quarantined != 0 {
		t.Fatalf("restored shadow did not promote: %+v", st)
	}
}

// copyStoreFiles copies every store file with the given prefix from src
// into dst.
func copyStoreFiles(t *testing.T, src, dst, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", src, err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatalf("write %s: %v", e.Name(), err)
		}
		n++
	}
	return n
}

// TestLifecycleCrashMidPromotionRestoresConsistentGeneration simulates a
// process dying between the invariants write and the lifecycle write of a
// promotion-era save: the store then holds the promoted invariants next to
// the pre-promotion lifecycle file. The fingerprint binding must detect the
// mismatch and restore the promoted set with fresh edge state — one
// consistent generation, never the stale quarantine map applied to the new
// baselines.
func TestLifecycleCrashMidPromotionRestoresConsistentGeneration(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t)
	cfg.AssocCacheSize = -1
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	drifted := []float64{0.8, 0.8, 0.2}
	i := 0
	feed := func() {
		t.Helper()
		if _, err := p.Violations(valueTrace(drifted, 16, float64(i)*1e-6)); err != nil {
			t.Fatalf("drifted window %d: %v", i, err)
		}
		i++
	}
	for i < 8 {
		feed()
	}
	if st := p.LifecycleStats(); st.Quarantined != 2 || st.Promotions != 0 {
		t.Fatalf("pre-promotion stats %+v", st)
	}
	dirPre := t.TempDir()
	if err := sys.SaveTo(dirPre); err != nil {
		t.Fatalf("SaveTo(pre): %v", err)
	}

	for p.LifecycleStats().Promotions == 0 {
		if i > 20 {
			t.Fatalf("never promoted")
		}
		feed()
	}
	dirPost := t.TempDir()
	if err := sys.SaveTo(dirPost); err != nil {
		t.Fatalf("SaveTo(post): %v", err)
	}

	// The crash store: post-promotion invariants, pre-promotion lifecycle —
	// exactly what a kill between SaveTo's two writes leaves behind (the
	// previous save's lifecycle file still in place).
	dirCrash := t.TempDir()
	if n := copyStoreFiles(t, dirPost, dirCrash, "invariants-"); n != 1 {
		t.Fatalf("copied %d invariants files", n)
	}
	if n := copyStoreFiles(t, dirPre, dirCrash, "lifecycle-"); n != 1 {
		t.Fatalf("copied %d lifecycle files", n)
	}

	sys2 := New(cfg)
	rep, err := sys2.LoadFrom(dirCrash)
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if rep.Invariants != 1 || rep.Lifecycles != 1 || rep.Partial() {
		t.Fatalf("load report %v, want invariants and lifecycle both recovered", rep)
	}
	p2 := sys2.Profile(ctx)
	st := p2.LifecycleStats()
	// Counters restore from the (stale) lifecycle file; edge state must be
	// fresh — the stale quarantine map has no business against the promoted
	// baselines.
	if st.Quarantined != 0 || st.ShadowAge != 0 {
		t.Fatalf("stale edge state survived the fingerprint mismatch: %+v", st)
	}
	for _, e := range p2.LifecycleEdges() {
		if e.State != invariant.EdgeLive || e.Obs != 0 {
			t.Fatalf("edge %v not fresh after crash restore: %+v", e.Pair, e)
		}
	}

	// Verdicts follow the loaded (promoted) generation: post-shift traffic
	// is clean, pre-shift values now violate the re-estimated pairs.
	repD, err := p2.Violations(valueTrace(drifted, 16, 0.5))
	if err != nil {
		t.Fatalf("post-restore drifted window: %v", err)
	}
	if len(repD.Violated) != 0 || repD.Coverage != 1 {
		t.Fatalf("promoted generation did not restore: violated %v coverage %v", repD.Violated, repD.Coverage)
	}
	repO, err := p2.Violations(valueTrace([]float64{0.8, 0.8, 0.8}, 16, 0.5))
	if err != nil {
		t.Fatalf("post-restore old-level window: %v", err)
	}
	if len(repO.Violated) != 2 {
		t.Fatalf("old-level window violated %v against promoted baselines, want the 2 re-estimated pairs", pairNames(repO.Violated))
	}
}

// TestLifecycleDensePathQuarantines runs the same quarantine flow down the
// dense reference pipeline (ExactDiagnosis): the lifecycle must behave
// identically there.
func TestLifecycleDensePathQuarantines(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t)
	cfg.ExactDiagnosis = true
	cfg.AssocCacheSize = -1
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	drifted := []float64{0.8, 0.8, 0.2}
	for i := 0; i < 12 && p.LifecycleStats().Promotions == 0; i++ {
		rep, err := p.Violations(valueTrace(drifted, 16, float64(i)*1e-6))
		if err != nil {
			t.Fatalf("drifted window %d: %v", i, err)
		}
		if p.LifecycleStats().Quarantined > 0 && len(rep.Violated) != 0 {
			t.Fatalf("dense path reported quarantined edges as violated: %v", rep.Violated)
		}
	}
	st := p.LifecycleStats()
	if st.Promotions != 1 || st.Generation != 2 {
		t.Fatalf("dense path lifecycle stats %+v, want a promotion", st)
	}
}

// TestPromotionDiagnoseRaceConsistency is the generation-consistency race
// test: diagnoses run concurrently with generation swaps (retrains of
// different sizes plus lifecycle promotions), and every diagnosis must be
// internally consistent with exactly one generation — tuple, known mask
// and unknown names all from the same set, never a mix. Run with -race.
func TestPromotionDiagnoseRaceConsistency(t *testing.T) {
	ctx := Context{Workload: "wl", IP: "10.0.0.1"}
	cfg := lifecycleConfig(t)
	sys := trainValueSystem(t, cfg, ctx)
	p := sys.Profile(ctx)

	// Two live generations of different sizes: swapping between them
	// mid-diagnosis is how a mixed verdict would show (index mismatch
	// between tuple and pair list).
	setA := invariant.NewSet(3, map[invariant.Pair]float64{
		{I: 0, J: 1}: 0.8, {I: 0, J: 2}: 0.8, {I: 1, J: 2}: 0.8,
	})
	setB := invariant.NewSet(3, map[invariant.Pair]float64{
		{I: 0, J: 2}: 0.5, {I: 1, J: 2}: 0.5,
	})

	stop := make(chan struct{})
	var swapWg sync.WaitGroup
	swapWg.Add(1)
	go func() {
		defer swapWg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			if k%2 == 0 {
				p.setInvariants(setA)
			} else {
				p.setInvariants(setB)
			}
		}
	}()

	drifted := []float64{0.8, 0.8, 0.2}
	errs := make(chan error, 8)
	var diagWg sync.WaitGroup
	for g := 0; g < 8; g++ {
		diagWg.Add(1)
		go func(g int) {
			defer diagWg.Done()
			for i := 0; i < 300; i++ {
				diag, err := p.Diagnose(valueTrace(drifted, 16, float64(g*1000+i)*1e-6))
				if err != nil {
					errs <- err
					return
				}
				n := len(diag.Tuple)
				if n != setA.Len() && n != setB.Len() {
					t.Errorf("tuple length %d matches no generation", n)
					return
				}
				if diag.Known != nil && len(diag.Known) != n {
					t.Errorf("known mask length %d over %d-pair tuple: mixed generations", len(diag.Known), n)
					return
				}
				if len(diag.Unknown)+len(diag.Hints) > n {
					t.Errorf("%d unknown + %d hints over %d pairs: mixed generations", len(diag.Unknown), len(diag.Hints), n)
					return
				}
			}
		}(g)
	}
	diagWg.Wait()
	close(stop)
	swapWg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("diagnose under generation swaps: %v", err)
	default:
	}
}

package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"invarnetx/internal/stats"
	"invarnetx/internal/xmlstore"
)

func TestCtxFileTokenRoundTrip(t *testing.T) {
	cases := []string{
		"", "wordcount", "10.0.0.2",
		"a/b", `a\b`, "glob*?", "colon:drive", "100%", "%2F", "a%b*c?d/e",
		"sort-2024", "..", ". ",
	}
	for _, in := range cases {
		tok := ctxFileToken(in)
		if strings.ContainsAny(tok, `/\*?:`) {
			t.Fatalf("token %q for %q still contains reserved characters", tok, in)
		}
		back, err := decodeCtxFileToken(tok)
		if err != nil {
			t.Fatalf("decode %q: %v", tok, err)
		}
		if back != in {
			t.Fatalf("round trip %q -> %q -> %q", in, tok, back)
		}
	}
	if tok := ctxFileToken(""); tok != "global" {
		t.Fatalf("empty field token = %q", tok)
	}
	for _, bad := range []string{"%", "%2", "%zz"} {
		if _, err := decodeCtxFileToken(bad); err == nil {
			t.Fatalf("malformed token %q decoded", bad)
		}
	}
}

func TestCtxFileTokenKeepsPathsInsideStoreDir(t *testing.T) {
	ctx := Context{Workload: "../escape", IP: "10.0.0.2/.."}
	p := modelPath("store", ctx)
	if filepath.Dir(p) != "store" {
		t.Fatalf("hostile context escaped the store dir: %s", p)
	}
}

// corruptStore trains and saves a system, then damages selected files.
func corruptStore(t *testing.T) (dir string, ctx Context, s *System) {
	t.Helper()
	ctx = Context{Workload: "wordcount", IP: "10.0.0.2"}
	s = trainSystem(t, DefaultConfig(), ctx, 740)
	rng := stats.NewRNG(741)
	if err := s.BuildSignature(ctx, "fault-a", synthTrace(rng, 40, 8, map[int]bool{0: true})); err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	return dir, ctx, s
}

func TestLoadFromSkipsTruncatedFile(t *testing.T) {
	dir, ctx, _ := corruptStore(t)
	mp := modelPath(dir, ctx)
	whole, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, whole[:len(whole)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(DefaultConfig())
	rep, err := s2.LoadFrom(dir)
	if err != nil {
		t.Fatalf("recoverable corruption failed the whole load: %v", err)
	}
	if !rep.Partial() || len(rep.Skipped) != 1 || !strings.HasPrefix(rep.Skipped[0].Name, "model-") {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Invariants != 1 || rep.Signatures != 1 {
		t.Fatalf("intact artefacts not recovered: %+v", rep)
	}
	if _, err := s2.Detector(ctx); err == nil {
		t.Fatal("truncated model silently loaded")
	}
	if _, err := s2.Invariants(ctx); err != nil {
		t.Fatalf("intact invariants lost: %v", err)
	}
}

func TestLoadFromSkipsZeroByteFile(t *testing.T) {
	dir, ctx, _ := corruptStore(t)
	if err := os.WriteFile(invariantPath(dir, ctx), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(DefaultConfig())
	rep, err := s2.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 || rep.Models != 1 || rep.Signatures != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "skipped 1 corrupt") {
		t.Fatalf("report string = %q", rep.String())
	}
}

func TestLoadFromSkipsUnknownVersion(t *testing.T) {
	dir, ctx, _ := corruptStore(t)
	mp := modelPath(dir, ctx)
	whole, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(string(whole), `version="1"`, `version="99"`, 1)
	if future == string(whole) {
		t.Fatal("test setup: version attribute not found")
	}
	if err := os.WriteFile(mp, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(DefaultConfig())
	rep, err := s2.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 || !errors.Is(rep.Skipped[0].Err, xmlstore.ErrVersion) {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := s2.Detector(ctx); err == nil {
		t.Fatal("future-versioned model silently loaded")
	}
}

func TestConcurrentSaveToLeavesParseableStore(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 750)
	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.SaveTo(dir); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s2 := New(DefaultConfig())
	rep, err := s2.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial() {
		t.Fatalf("concurrent SaveTo left corrupt files: %v", rep)
	}
	if _, err := s2.Detector(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Invariants(ctx); err != nil {
		t.Fatal(err)
	}
}

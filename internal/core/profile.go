package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"invarnetx/internal/detect"
	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/signature"
)

// Profile is the self-contained diagnosis state of one operation context:
// its trained CPI detector, invariant set, signature entries, training
// pools and association-matrix cache, plus the registry of live monitors
// watching jobs under this context. Each profile synchronises itself, so
// training or diagnosing one context never contends with another; the
// no-context ablation is simply the degenerate deployment with a single
// global profile (key Context{}), not a separate code path.
//
// A Profile is obtained from System.Profile (created on first use) and
// stays valid for the lifetime of the System.
type Profile struct {
	sys *System
	key Context

	cache *assocCache // per-profile; nil when caching is disabled

	mu         sync.RWMutex
	detector   *detect.Detector
	invariants *invariant.Set
	sigs       signature.DB
	cpiPool    trainingPool[[]float64]
	windowPool trainingPool[*metrics.Trace]

	monitors *detect.Registry

	// lc is the drift-aware invariant lifecycle (nil when disabled): edge
	// health, quarantine and shadow generations. See lifecycle.go.
	lc *lifecycle

	// cross marks spatio-temporal profiles (context IP of the form
	// "nodeA~nodeB#stage"): their windows are joint two-node traces, only
	// node-spanning pairs survive selection, and pair names carry the node
	// each metric lives on. Nil for ordinary intra-node profiles.
	cross *crossScope

	// Sparse-path edge telemetry (see SparseStats): how trained pairs were
	// resolved across every sparse diagnosis of this profile.
	sparseScreened atomic.Int64
	sparseExact    atomic.Int64
	sparseSkipped  atomic.Int64
}

// newProfile builds an empty profile for key under s's configuration.
func newProfile(s *System, key Context) *Profile {
	p := &Profile{
		sys:        s,
		key:        key,
		cache:      newAssocCache(s.cfg.AssocCacheSize),
		cpiPool:    newTrainingPool[[]float64](s.cfg.PoolCap),
		windowPool: newTrainingPool[*metrics.Trace](s.cfg.PoolCap),
		monitors:   detect.NewRegistry(),
	}
	p.sigs.MinScore = s.cfg.SigMinScore
	if s.cfg.Lifecycle.Enabled {
		p.lc = newLifecycle(s.cfg.Lifecycle)
	}
	if ck, ok := ParseCrossContext(key); ok {
		p.cross = &crossScope{key: ck, k: len(CrossMetricIdx)}
	}
	return p
}

// Context returns the profile's operation context (the zero Context for the
// global no-context profile).
func (p *Profile) Context() Context { return p.key }

// Monitors returns the registry of live monitors attached to this profile
// (populated by supervised monitor jobs; see SuperviseMonitor).
func (p *Profile) Monitors() *detect.Registry { return p.monitors }

// TrainPerformanceModel fits the ARIMA CPI model and thresholds from the
// CPI traces of N normal runs. Traces pool with (deduplicated against)
// everything trained before, and the model is refit on the whole pool.
func (p *Profile) TrainPerformanceModel(cpiTraces [][]float64) error {
	return p.trainPerformanceModel(p.key, cpiTraces)
}

// trainPerformanceModel is TrainPerformanceModel with the context used in
// error messages made explicit: System-level calls report the caller's
// context even when it maps onto the global no-context profile.
func (p *Profile) trainPerformanceModel(errCtx Context, cpiTraces [][]float64) error {
	p.mu.Lock()
	for _, tr := range cpiTraces {
		p.cpiPool.add(fingerprintRows([][]float64{tr}), tr)
	}
	pool := p.cpiPool.snapshot()
	p.mu.Unlock()
	d, err := detect.Train(pool, p.sys.cfg.Detect)
	if err != nil {
		return fmt.Errorf("core: training performance model for %v: %w", errCtx, err)
	}
	p.mu.Lock()
	p.detector = d
	p.mu.Unlock()
	return nil
}

// TrainInvariants runs Algorithm 1 over the metric traces of N normal
// runs. Runs pool with (deduplicated against) everything trained before:
// Algorithm 1's stability test then only keeps pairs whose association
// holds on *every* pooled window — which is exactly how the global
// no-context profile loses most of its invariants on a heterogeneous
// platform.
func (p *Profile) TrainInvariants(runs []*metrics.Trace) error {
	return p.trainInvariants(p.key, runs)
}

func (p *Profile) trainInvariants(errCtx Context, runs []*metrics.Trace) error {
	p.mu.Lock()
	for _, run := range runs {
		p.windowPool.add(fingerprintWindow(run.Rows, run.Valid), run)
	}
	pool := p.windowPool.snapshot()
	p.mu.Unlock()
	// The whole pool is recomputed on every call; the association cache
	// turns all but the newly added windows into lookups.
	mats := make([]*invariant.Matrix, 0, len(pool))
	for _, run := range pool {
		m, _, err := p.analyze(run)
		if err != nil {
			return fmt.Errorf("core: association matrix for %v: %w", errCtx, err)
		}
		mats = append(mats, m)
	}
	set, err := invariant.Select(mats, p.sys.cfg.Tau)
	if err != nil {
		return fmt.Errorf("core: invariant selection for %v: %w", errCtx, err)
	}
	if p.cross != nil {
		// Cross profiles keep only the edges that span the two nodes:
		// within-node pairs of the joint space duplicate the intra-node
		// profiles' work and would dilute cross signatures with tuples the
		// single-node layer already owns.
		set = filterCrossPairs(set, p.cross.k)
	}
	p.mu.Lock()
	p.invariants = set
	p.mu.Unlock()
	if p.lc != nil {
		p.lc.install(set)
	}
	return nil
}

// Detector returns the trained CPI detector.
func (p *Profile) Detector() (*detect.Detector, error) { return p.detectorFor(p.key) }

func (p *Profile) detectorFor(errCtx Context) (*detect.Detector, error) {
	p.mu.RLock()
	d := p.detector
	p.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoModel, errCtx)
	}
	return d, nil
}

// Invariants returns the trained invariant set.
func (p *Profile) Invariants() (*invariant.Set, error) { return p.invariantsFor(p.key) }

func (p *Profile) invariantsFor(errCtx Context) (*invariant.Set, error) {
	p.mu.RLock()
	set := p.invariants
	p.mu.RUnlock()
	if set == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoInvariants, errCtx)
	}
	return set, nil
}

// NewMonitor starts online anomaly detection for a job running under this
// profile, seeded with the first CPI samples of the run.
func (p *Profile) NewMonitor(warmup []float64) (*detect.Monitor, error) {
	return p.newMonitorFor(p.key, warmup)
}

func (p *Profile) newMonitorFor(errCtx Context, warmup []float64) (*detect.Monitor, error) {
	d, err := p.detectorFor(errCtx)
	if err != nil {
		return nil, err
	}
	return d.NewMonitor(warmup), nil
}

// ViolationReport is the outcome of the masked-first violation analysis of
// one abnormal window — the single pipeline behind BuildSignature and
// Diagnose. A clean window is simply the all-known case: Known is nil and
// Coverage is 1.
type ViolationReport struct {
	// Tuple is the binary violation tuple over the profile's sorted
	// invariant pairs; unknown coordinates are false (neither holding nor
	// violated).
	Tuple signature.Tuple
	// Known flags which invariants were checkable in the window. Nil means
	// the telemetry was clean and every invariant was checkable.
	Known []bool
	// Violated lists the known violated pairs — the hints InvarNet-X
	// reports for unknown problems.
	Violated []invariant.Pair
	// Coverage is the checkable fraction of invariants (1 on a clean
	// window) — defined here and nowhere else.
	Coverage float64

	// set is the invariant set the report was computed against. Carrying
	// it keeps every consumer of the report — Unknown naming, signature
	// matching — on the *same* model generation even when a concurrent
	// retrain or shadow promotion swaps the profile's live set
	// mid-diagnosis.
	set *invariant.Set
}

// Violations computes the violation report of an abnormal metric window
// against the profile's invariants. Missing or masked samples make the
// touched invariants *unknown* rather than violated.
func (p *Profile) Violations(abnormal *metrics.Trace) (*ViolationReport, error) {
	return p.violations(p.key, abnormal)
}

func (p *Profile) violations(errCtx Context, abnormal *metrics.Trace) (*ViolationReport, error) {
	return p.violationsHinted(errCtx, abnormal, nil)
}

// violationsHinted dispatches between the sparse hot path (default) and the
// dense reference pipeline (Config.ExactDiagnosis). Both produce identical
// reports; the hint only ever accelerates the sparse path.
func (p *Profile) violationsHinted(errCtx Context, abnormal *metrics.Trace, hint *WindowHint) (*ViolationReport, error) {
	set, err := p.invariantsFor(errCtx)
	if err != nil {
		return nil, err
	}
	if p.sys.cfg.ExactDiagnosis {
		return p.violationsDense(set, abnormal)
	}
	return p.violationsSparse(set, abnormal, hint)
}

// violationsDense is the reference pipeline: full association matrix
// (through the profile's matrix cache) plus ViolationsMasked over the set.
func (p *Profile) violationsDense(set *invariant.Set, abnormal *metrics.Trace) (*ViolationReport, error) {
	mat, mask, err := p.analyze(abnormal)
	if err != nil {
		return nil, err
	}
	raw, known, err := set.ViolationsMasked(mat, p.sys.cfg.Epsilon, mask)
	if err != nil {
		return nil, err
	}
	// surface is the known mask the report shows: nil on a clean window
	// (ViolationsMasked's known is then all-true), possibly materialised by
	// the lifecycle when quarantined edges must read as unknown.
	var surface []bool
	if mask != nil {
		surface = known
	}
	if p.lc != nil {
		pairs := set.SortedPairs()
		score := func(k int) (float64, bool) {
			pr := pairs[k]
			if mask != nil && !mask.OK(pr.I, pr.J) {
				return 0, false
			}
			return mat.Get(pr.I, pr.J), true
		}
		raw, surface = p.lifecyclePost(set, raw, surface, score)
	}
	rep := &ViolationReport{Tuple: signature.Tuple(raw), Coverage: 1, set: set}
	if surface != nil {
		// Degraded window (or quarantined edges): surface the known mask
		// and the checkable fraction.
		rep.Known = surface
		checkable := 0
		for _, ok := range surface {
			if ok {
				checkable++
			}
		}
		if len(surface) > 0 {
			rep.Coverage = float64(checkable) / float64(len(surface))
		}
	}
	for k, pr := range set.SortedPairs() {
		if raw[k] && (surface == nil || surface[k]) {
			rep.Violated = append(rep.Violated, pr)
		}
	}
	return rep, nil
}

// BuildSignature records the violation tuple of an investigated problem in
// the profile's signature entries: "Once the performance problem is
// resolved, a new signature will be added into the signature base."
func (p *Profile) BuildSignature(problem string, abnormal *metrics.Trace) error {
	_, _, err := p.buildSignature(p.key, problem, abnormal)
	return err
}

// buildSignature computes and merges the signature, returning the stored
// entry and whether it was new. Storage is idempotent by (context,
// fingerprint): re-labelling the same investigated problem — a retried POST,
// a re-run study — must not inflate the database and skew best-match scans.
func (p *Profile) buildSignature(errCtx Context, problem string, abnormal *metrics.Trace) (signature.Entry, bool, error) {
	rep, err := p.violations(errCtx, abnormal)
	if err != nil {
		return signature.Entry{}, false, err
	}
	entry := signature.Entry{Tuple: rep.Tuple, Problem: problem, IP: p.key.IP, Workload: p.key.Workload}
	p.mu.Lock()
	added := p.sigs.Merge(entry)
	p.mu.Unlock()
	return entry, added, nil
}

// mergeSignature stores an already-built entry unless an identical one is
// present (used by LoadFrom and fleet anti-entropy), reporting whether the
// entry was added.
func (p *Profile) mergeSignature(e signature.Entry) bool {
	p.mu.Lock()
	added := p.sigs.Merge(e)
	p.mu.Unlock()
	return added
}

// setDetector installs a loaded detector (used by LoadFrom).
func (p *Profile) setDetector(d *detect.Detector) {
	p.mu.Lock()
	p.detector = d
	p.mu.Unlock()
}

// setInvariants installs a loaded invariant set (used by LoadFrom).
func (p *Profile) setInvariants(set *invariant.Set) {
	p.mu.Lock()
	p.invariants = set
	p.mu.Unlock()
	if p.lc != nil {
		p.lc.install(set)
	}
}

// SignatureCount returns the number of stored signatures.
func (p *Profile) SignatureCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sigs.Len()
}

// SignatureSnapshot returns a deep copy of the profile's signature
// database, taken under the profile lock — safe to read, match and audit
// while concurrent BuildSignature calls keep writing to the live one.
func (p *Profile) SignatureSnapshot() *signature.DB {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sigs.Clone()
}

// Diagnose runs cause inference on an abnormal metric window. The pipeline
// is masked-first: invariants whose metrics were unavailable are reported
// unknown rather than violated, signature similarity is computed only over
// the known invariants, and scores and Confidence are weighted by the
// checkable fraction; a clean window is the all-known case of the same
// path.
func (p *Profile) Diagnose(abnormal *metrics.Trace) (*Diagnosis, error) {
	return p.diagnose(p.key, abnormal)
}

func (p *Profile) diagnose(errCtx Context, abnormal *metrics.Trace) (*Diagnosis, error) {
	return p.diagnoseHinted(errCtx, abnormal, nil)
}

// DiagnoseHinted is Diagnose with serving-layer reuse state: a window
// fingerprint for the report cache and/or a lazily built scorer over
// incrementally maintained per-metric state. See WindowHint.
func (p *Profile) DiagnoseHinted(abnormal *metrics.Trace, hint *WindowHint) (*Diagnosis, error) {
	return p.diagnoseHinted(p.key, abnormal, hint)
}

func (p *Profile) diagnoseHinted(errCtx Context, abnormal *metrics.Trace, hint *WindowHint) (*Diagnosis, error) {
	rep, err := p.violationsHinted(errCtx, abnormal, hint)
	if err != nil {
		return nil, err
	}
	diag := &Diagnosis{Context: errCtx, Tuple: rep.Tuple, Known: rep.Known, Coverage: rep.Coverage}
	for _, pr := range rep.Violated {
		diag.Hints = append(diag.Hints, p.pairLabel(pr))
	}
	if rep.Known != nil {
		// Name unknown pairs against the set the report was computed with,
		// not a re-read of the live one: a retrain or shadow promotion
		// mid-diagnosis must not mix two generations in one verdict.
		set := rep.set
		if set == nil {
			if set, err = p.invariantsFor(errCtx); err != nil {
				return nil, err
			}
		}
		for k, ok := range rep.Known {
			if !ok {
				diag.Unknown = append(diag.Unknown, p.pairLabel(set.SortedPairs()[k]))
			}
		}
	}
	// The profile is the signature scope: its entries all carry the
	// profile's own context (empty for the global no-context profile, which
	// matches any).
	p.mu.RLock()
	matches, err := p.sigs.MatchMasked(rep.Tuple, rep.Known, p.key.IP, p.key.Workload, p.sys.cfg.Similarity, 0)
	p.mu.RUnlock()
	if err != nil {
		if errors.Is(err, signature.ErrEmpty) {
			return diag, nil // hints only
		}
		return nil, err
	}
	ranked := signature.BestProblem(matches)
	if p.sys.cfg.TopK > 0 && len(ranked) > p.sys.cfg.TopK {
		ranked = ranked[:p.sys.cfg.TopK]
	}
	// Weight similarity by the checkable fraction: a perfect match found
	// while blind to half the invariants is only half the evidence.
	if diag.Coverage < 1 {
		for i := range ranked {
			ranked[i].Score *= diag.Coverage
		}
	}
	diag.Causes = ranked
	if len(ranked) > 0 {
		diag.Confidence = ranked[0].Score
	}
	return diag, nil
}

// ProfileStats is an operator-facing snapshot of one profile.
type ProfileStats struct {
	// Context is the profile's operation context.
	Context Context
	// HasModel reports whether a CPI performance model is trained.
	HasModel bool
	// Invariants is the size of the trained invariant set (0 if none).
	Invariants int
	// Signatures is the number of stored problem signatures.
	Signatures int
	// CPIRuns and Windows are the training-pool sizes (after dedupe and
	// capping).
	CPIRuns, Windows int
	// Monitors is the number of live attached monitors.
	Monitors int
	// Cache reports the profile's association-matrix cache counters
	// (shared with the sparse path's report cache).
	Cache CacheStats
	// Sparse reports the sparse diagnosis path's edge counters.
	Sparse SparseStats
	// SigIndex reports the signature retrieval index: structure (scopes,
	// buckets, zero-tuple groups) and index-vs-scan query counters.
	SigIndex signature.IndexStats
	// Lifecycle reports the drift-lifecycle counters (zero when the
	// lifecycle is disabled).
	Lifecycle LifecycleStats
}

// Stats snapshots the profile for reporting (invarctl profiles).
func (p *Profile) Stats() ProfileStats {
	p.mu.RLock()
	st := ProfileStats{
		Context:    p.key,
		HasModel:   p.detector != nil,
		Signatures: p.sigs.Len(),
		CPIRuns:    p.cpiPool.size(),
		Windows:    p.windowPool.size(),
	}
	if p.invariants != nil {
		st.Invariants = p.invariants.Len()
	}
	p.mu.RUnlock()
	st.Monitors = p.monitors.Len()
	st.Cache = p.CacheStats()
	st.Sparse = p.SparseStats()
	st.SigIndex = p.SignatureIndexStats()
	st.Lifecycle = p.LifecycleStats()
	return st
}

// SignatureIndexStats snapshots the profile's signature retrieval index:
// partition structure plus the cumulative index-vs-scan query counters.
func (p *Profile) SignatureIndexStats() signature.IndexStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sigs.IndexStats()
}

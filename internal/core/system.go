// Package core is InvarNet-X itself: the centralized diagnosis system of
// Fig. 3, wiring the substrates together.
//
// Offline part (three modules):
//   - performance-model building: per operation context, an ARIMA model of
//     normal CPI plus a residual threshold (TrainPerformanceModel);
//   - invariant construction: per operation context, the MIC invariant set
//     over N normal runs (TrainInvariants);
//   - signature-base building: per investigated problem, the binary
//     violation tuple stored under its context (BuildSignature).
//
// Online part (two modules):
//   - performance anomaly detection: an online Monitor per running job that
//     checks ARIMA drift on the CPI stream (NewMonitor);
//   - cause inference: triggered on an alert, computes the violation tuple
//     of the abnormal window and retrieves the most similar signatures
//     (Diagnose).
//
// Everything is scoped by the operation context (workload type, node IP);
// Config.UseContext=false gives the ablated variant evaluated in Figs. 9-10.
package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"

	"invarnetx/internal/detect"
	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
	"invarnetx/internal/signature"
)

// Context is the paper's operation context: "the workload type and node ID".
type Context struct {
	Workload string
	IP       string
}

func (c Context) String() string { return fmt.Sprintf("%s@%s", c.Workload, c.IP) }

// Config parameterises an InvarNet-X instance. Zero-valued fields take the
// paper defaults via DefaultConfig.
type Config struct {
	// Epsilon is the invariant-violation threshold (paper: 0.2).
	Epsilon float64
	// Tau is the invariant-selection stability threshold (paper: 0.2).
	Tau float64
	// Detect configures anomaly detection (rule, beta, consecutive).
	Detect detect.Config
	// Assoc is the pairwise association measure; mic.MIC by default,
	// arx.Association for the baseline comparison.
	Assoc invariant.AssociationFunc
	// AssocName labels the measure in reports.
	AssocName string
	// BatchAssoc, when set, prepares each window once and scores pairs with
	// shared preprocessing instead of calling Assoc per pair. New wires
	// MICBatch automatically when Assoc is the stock mic.MIC; set it
	// explicitly for a custom measure with a batch form, or leave it nil to
	// force the per-pair path.
	BatchAssoc BatchAssociation
	// AssocCacheSize bounds the per-(context, window) association-matrix
	// cache: 0 selects DefaultAssocCacheSize, negative disables caching.
	AssocCacheSize int
	// Similarity is the tuple-similarity measure for signature retrieval.
	Similarity signature.Measure
	// TopK bounds the returned cause list (0 = all).
	TopK int
	// UseContext scopes models and signatures by (workload, node). When
	// false, a single global profile and an unscoped signature search are
	// used — the "InvarNet-X (no operation context)" ablation.
	UseContext bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Epsilon:    invariant.DefaultEpsilon,
		Tau:        invariant.DefaultTau,
		Detect:     detect.DefaultConfig(),
		Assoc:      mic.MIC,
		AssocName:  "mic",
		Similarity: signature.Jaccard,
		TopK:       5,
		UseContext: true,
	}
}

// System is one InvarNet-X deployment.
type System struct {
	cfg   Config
	cache *assocCache // nil when AssocCacheSize < 0

	mu         sync.RWMutex
	detectors  map[Context]*detect.Detector
	invariants map[Context]*invariant.Set
	sigs       signature.DB

	// Training pools, used when UseContext is false: "InvarNet-X without
	// operation context ... only contains a single performance model and
	// signature base" (§4.3), so training material from every context
	// accumulates into one global model instead of each call replacing
	// the last.
	cpiPool    map[Context][][]float64
	windowPool map[Context][]*metrics.Trace
}

// Errors reported by the online path.
var (
	// ErrNoModel means the context has no trained performance model.
	ErrNoModel = errors.New("core: no performance model for context")
	// ErrNoInvariants means the context has no trained invariant set.
	ErrNoInvariants = errors.New("core: no invariants for context")
)

// New builds a System; zero-valued cfg fields are defaulted.
func New(cfg Config) *System {
	def := DefaultConfig()
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.Tau <= 0 {
		cfg.Tau = def.Tau
	}
	if cfg.Detect.Beta <= 0 {
		cfg.Detect.Beta = def.Detect.Beta
	}
	if cfg.Detect.Consecutive <= 0 {
		cfg.Detect.Consecutive = def.Detect.Consecutive
	}
	if cfg.Assoc == nil {
		cfg.Assoc = def.Assoc
		cfg.AssocName = def.AssocName
	}
	// Auto-wire the batch MIC path only when Assoc is literally the stock
	// mic.MIC — a custom Assoc (arx, a wrapped MIC) must not be silently
	// replaced by a scorer computing a different measure.
	if cfg.BatchAssoc == nil {
		cfg.BatchAssoc = BatchFor(cfg.Assoc)
	}
	return &System{
		cfg:        cfg,
		cache:      newAssocCache(cfg.AssocCacheSize),
		detectors:  make(map[Context]*detect.Detector),
		invariants: make(map[Context]*invariant.Set),
		cpiPool:    make(map[Context][][]float64),
		windowPool: make(map[Context][]*metrics.Trace),
	}
}

// isStockMIC reports whether f is exactly mic.MIC. Func values are not
// comparable in Go; the code-pointer comparison is the standard escape
// hatch and is only used as a conservative gate for the batch fast path.
func isStockMIC(f invariant.AssociationFunc) bool {
	if f == nil {
		return false
	}
	return reflect.ValueOf(f).Pointer() == reflect.ValueOf(invariant.AssociationFunc(mic.MIC)).Pointer()
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// key maps a context to its storage key; without operation context all
// training pools into one global profile.
func (s *System) key(ctx Context) Context {
	if s.cfg.UseContext {
		return ctx
	}
	return Context{}
}

// TrainPerformanceModel fits the ARIMA CPI model and thresholds for ctx
// from the CPI traces of N normal runs. Without operation context the
// traces pool with everything trained before, and the single global model
// is refit on the whole pool.
func (s *System) TrainPerformanceModel(ctx Context, cpiTraces [][]float64) error {
	key := s.key(ctx)
	s.mu.Lock()
	s.cpiPool[key] = append(s.cpiPool[key], cpiTraces...)
	pool := s.cpiPool[key]
	s.mu.Unlock()
	d, err := detect.Train(pool, s.cfg.Detect)
	if err != nil {
		return fmt.Errorf("core: training performance model for %v: %w", ctx, err)
	}
	s.mu.Lock()
	s.detectors[key] = d
	s.mu.Unlock()
	return nil
}

// TrainInvariants runs Algorithm 1 for ctx over the metric traces of N
// normal runs. Without operation context the runs pool with everything
// trained before: Algorithm 1's stability test then only keeps pairs whose
// association holds on *every* node and workload seen — which is exactly
// how the global variant loses most of its invariants on a heterogeneous
// platform.
func (s *System) TrainInvariants(ctx Context, runs []*metrics.Trace) error {
	key := s.key(ctx)
	s.mu.Lock()
	s.windowPool[key] = append(s.windowPool[key], runs...)
	pool := s.windowPool[key]
	s.mu.Unlock()
	// Without operation context the whole pool is recomputed on every call;
	// the association cache turns all but the newly added windows into
	// lookups.
	mats := make([]*invariant.Matrix, 0, len(pool))
	for _, run := range pool {
		m, err := s.assocMatrix(key, run.Rows)
		if err != nil {
			return fmt.Errorf("core: association matrix for %v: %w", ctx, err)
		}
		mats = append(mats, m)
	}
	set, err := invariant.Select(mats, s.cfg.Tau)
	if err != nil {
		return fmt.Errorf("core: invariant selection for %v: %w", ctx, err)
	}
	s.mu.Lock()
	s.invariants[key] = set
	s.mu.Unlock()
	return nil
}

// Detector returns the trained detector for ctx.
func (s *System) Detector(ctx Context) (*detect.Detector, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.detectors[s.key(ctx)]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoModel, ctx)
	}
	return d, nil
}

// Invariants returns the trained invariant set for ctx.
func (s *System) Invariants(ctx Context) (*invariant.Set, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, ok := s.invariants[s.key(ctx)]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoInvariants, ctx)
	}
	return set, nil
}

// NewMonitor starts online anomaly detection for a job running under ctx,
// seeded with the first CPI samples of the run.
func (s *System) NewMonitor(ctx Context, warmup []float64) (*detect.Monitor, error) {
	d, err := s.Detector(ctx)
	if err != nil {
		return nil, err
	}
	return d.NewMonitor(warmup), nil
}

// ViolationTuple computes the binary violation tuple of an abnormal metric
// window against ctx's invariants, along with the violated pairs.
func (s *System) ViolationTuple(ctx Context, abnormal *metrics.Trace) (signature.Tuple, []invariant.Pair, error) {
	set, err := s.Invariants(ctx)
	if err != nil {
		return nil, nil, err
	}
	mat, err := s.assocMatrix(s.key(ctx), abnormal.Rows)
	if err != nil {
		return nil, nil, err
	}
	raw, err := set.Violations(mat, s.cfg.Epsilon)
	if err != nil {
		return nil, nil, err
	}
	tuple := signature.Tuple(raw)
	pairs, err := set.ViolatedPairs(mat, s.cfg.Epsilon)
	if err != nil {
		return nil, nil, err
	}
	return tuple, pairs, nil
}

// traceDegraded reports whether the abnormal window needs the masked
// diagnosis path: it carries a validity mask, or raw non-finite samples
// (telemetry gaps stored as NaN without a mask).
func traceDegraded(tr *metrics.Trace) bool {
	if tr.Masked() {
		return true
	}
	for _, row := range tr.Rows {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// ViolationTupleMasked is ViolationTuple under degraded telemetry: pairs
// whose metrics were unavailable in the window are *unknown* (known[k]
// false, tuple[k] false) instead of counted as violated. The returned pairs
// are the known violated ones.
func (s *System) ViolationTupleMasked(ctx Context, abnormal *metrics.Trace) (signature.Tuple, []bool, []invariant.Pair, error) {
	set, err := s.Invariants(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	mat, pm, err := invariant.ComputeMaskedMatrix(abnormal.Rows, abnormal.Valid, s.cfg.Assoc, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	raw, known, err := set.ViolationsMasked(mat, s.cfg.Epsilon, pm)
	if err != nil {
		return nil, nil, nil, err
	}
	var pairs []invariant.Pair
	for k, p := range set.SortedPairs() {
		if raw[k] && known[k] {
			pairs = append(pairs, p)
		}
	}
	return signature.Tuple(raw), known, pairs, nil
}

// BuildSignature records the violation tuple of an investigated problem in
// the signature database: "Once the performance problem is resolved, a new
// signature will be added into the signature base."
func (s *System) BuildSignature(ctx Context, problem string, abnormal *metrics.Trace) error {
	tuple, _, err := s.ViolationTuple(ctx, abnormal)
	if err != nil {
		return err
	}
	entry := signature.Entry{Tuple: tuple, Problem: problem, IP: ctx.IP, Workload: ctx.Workload}
	if !s.cfg.UseContext {
		entry.IP, entry.Workload = "", ""
	}
	s.mu.Lock()
	s.sigs.Add(entry)
	s.mu.Unlock()
	return nil
}

// SignatureCount returns the number of stored signatures.
func (s *System) SignatureCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sigs.Len()
}

// SignatureDB exposes the signature database (for persistence).
func (s *System) SignatureDB() *signature.DB { return &s.sigs }

// Diagnosis is the output of cause inference: a ranked cause list plus the
// violated-pair hints for unknown problems.
type Diagnosis struct {
	Context Context
	Tuple   signature.Tuple
	// Known flags which invariants were checkable in the abnormal window;
	// under degraded telemetry, invariants whose metrics were unavailable
	// are unknown — neither holding nor violated. Nil means every
	// invariant was checkable.
	Known []bool
	// Coverage is the fraction of invariants that were checkable (1 on a
	// clean window).
	Coverage float64
	// Confidence is the coverage-weighted score of the top cause: the
	// best signature similarity, computed only over known invariants and
	// scaled by Coverage. 0 when no cause matched or nothing was
	// checkable.
	Confidence float64
	// Causes is ranked most-probable-first; empty when the database holds
	// nothing similar ("we provide some hints and leave the problem to
	// the system administrators"). Scores are weighted by Coverage, so a
	// perfect match over half-blind telemetry scores 0.5, not 1.
	Causes []signature.Match
	// Hints names the violated metric pairs, e.g.
	// "mem.pagefaults-cpu.user".
	Hints []string
	// Unknown names the metric pairs whose invariants could not be
	// checked, so operators can see what the diagnosis is blind to.
	Unknown []string
}

// RootCause returns the top-ranked cause, or "" when unknown.
func (d *Diagnosis) RootCause() string {
	if len(d.Causes) == 0 {
		return ""
	}
	return d.Causes[0].Problem
}

// pairName renders an invariant pair as a hint string, e.g.
// "mem.pagefaults-cpu.user".
func pairName(p invariant.Pair) string {
	if p.I < len(metrics.Names) && p.J < len(metrics.Names) {
		return metrics.Names[p.I] + "-" + metrics.Names[p.J]
	}
	return fmt.Sprintf("m%d-m%d", p.I, p.J)
}

// Diagnose runs cause inference on an abnormal metric window for ctx. A
// window with missing or masked samples takes the degraded path: invariants
// whose metrics were unavailable are reported unknown rather than violated,
// signature similarity is computed only over the known invariants, and the
// resulting scores and Confidence are weighted by the checkable fraction.
func (s *System) Diagnose(ctx Context, abnormal *metrics.Trace) (*Diagnosis, error) {
	var (
		tuple signature.Tuple
		known []bool
		pairs []invariant.Pair
		err   error
	)
	degraded := traceDegraded(abnormal)
	if degraded {
		tuple, known, pairs, err = s.ViolationTupleMasked(ctx, abnormal)
	} else {
		tuple, pairs, err = s.ViolationTuple(ctx, abnormal)
	}
	if err != nil {
		return nil, err
	}
	diag := &Diagnosis{Context: ctx, Tuple: tuple, Known: known, Coverage: 1}
	for _, p := range pairs {
		diag.Hints = append(diag.Hints, pairName(p))
	}
	if known != nil {
		set, err := s.Invariants(ctx)
		if err != nil {
			return nil, err
		}
		checkable := 0
		for k, ok := range known {
			if ok {
				checkable++
			} else {
				diag.Unknown = append(diag.Unknown, pairName(set.SortedPairs()[k]))
			}
		}
		if len(known) > 0 {
			diag.Coverage = float64(checkable) / float64(len(known))
		}
	}
	ip, wl := ctx.IP, ctx.Workload
	if !s.cfg.UseContext {
		ip, wl = "", ""
	}
	s.mu.RLock()
	matches, err := s.sigs.MatchMasked(tuple, known, ip, wl, s.cfg.Similarity, 0)
	s.mu.RUnlock()
	if err != nil {
		if errors.Is(err, signature.ErrEmpty) {
			return diag, nil // hints only
		}
		return nil, err
	}
	ranked := signature.BestProblem(matches)
	if s.cfg.TopK > 0 && len(ranked) > s.cfg.TopK {
		ranked = ranked[:s.cfg.TopK]
	}
	// Weight similarity by the checkable fraction: a perfect match found
	// while blind to half the invariants is only half the evidence.
	if diag.Coverage < 1 {
		for i := range ranked {
			ranked[i].Score *= diag.Coverage
		}
	}
	diag.Causes = ranked
	if len(ranked) > 0 {
		diag.Confidence = ranked[0].Score
	}
	return diag, nil
}

// Package core is InvarNet-X itself: the centralized diagnosis system of
// Fig. 3, wiring the substrates together.
//
// Offline part (three modules):
//   - performance-model building: per operation context, an ARIMA model of
//     normal CPI plus a residual threshold (TrainPerformanceModel);
//   - invariant construction: per operation context, the MIC invariant set
//     over N normal runs (TrainInvariants);
//   - signature-base building: per investigated problem, the binary
//     violation tuple stored under its context (BuildSignature).
//
// Online part (two modules):
//   - performance anomaly detection: an online Monitor per running job that
//     checks ARIMA drift on the CPI stream (NewMonitor);
//   - cause inference: triggered on an alert, computes the violation tuple
//     of the abnormal window and retrieves the most similar signatures
//     (Diagnose).
//
// The state of each operation context (workload type, node IP) lives in its
// own self-synchronised Profile, held in a striped registry: training or
// diagnosing context A never contends with context B. Config.UseContext =
// false maps every context onto the single global profile — the ablated
// variant evaluated in Figs. 9-10 — as the degenerate case of the same
// machinery, not a separate code path.
package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"invarnetx/internal/detect"
	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
	"invarnetx/internal/signature"
)

// Context is the paper's operation context: "the workload type and node ID".
type Context struct {
	Workload string
	IP       string
}

func (c Context) String() string { return fmt.Sprintf("%s@%s", c.Workload, c.IP) }

// Config parameterises an InvarNet-X instance. Zero-valued fields take the
// paper defaults via DefaultConfig.
type Config struct {
	// Epsilon is the invariant-violation threshold (paper: 0.2).
	Epsilon float64
	// Tau is the invariant-selection stability threshold (paper: 0.2).
	Tau float64
	// Detect configures anomaly detection (rule, beta, consecutive).
	Detect detect.Config
	// Assoc is the pairwise association measure; mic.MIC by default,
	// arx.Association for the baseline comparison.
	Assoc invariant.AssociationFunc
	// AssocName labels the measure in reports.
	AssocName string
	// BatchAssoc, when set, prepares each window once and scores pairs with
	// shared preprocessing instead of calling Assoc per pair. New wires
	// MICBatch automatically when Assoc is the stock mic.MIC; set it
	// explicitly for a custom measure with a batch form, or leave it nil to
	// force the per-pair path.
	BatchAssoc BatchAssociation
	// AssocCacheSize bounds each profile's association-matrix cache: 0
	// selects DefaultAssocCacheSize, negative disables caching.
	AssocCacheSize int
	// PoolCap bounds each profile's training pools (CPI runs and invariant
	// windows). The zero value is NOT "no pooling": it selects
	// DefaultPoolCap, the bounded default every long-running deployment
	// should want. A negative value leaves the pools unbounded — explicit
	// opt-in for offline experiments that retrain over a fixed corpus and
	// must never evict it. Appended material is fingerprint-deduplicated
	// either way, so retraining over the same traces never grows a pool.
	PoolCap int
	// Similarity is the tuple-similarity measure for signature retrieval.
	Similarity signature.Measure
	// SigMinScore is the minimum similarity for a signature match to be
	// reported. The paper ranks every known signature, so the default is 0
	// (report all, ranked); setting it > 0 both drops weak causes from
	// reports and lets unmasked Jaccard/Cosine retrieval run through the
	// scope-partitioned inverted index instead of scanning the scope —
	// at MinScore 0 every same-scope signature matches by definition, so
	// there is nothing for an index to prune.
	SigMinScore float64
	// TopK bounds the returned cause list (0 = all).
	TopK int
	// UseContext scopes models and signatures by (workload, node). When
	// false, a single global profile and an unscoped signature search are
	// used — the "InvarNet-X (no operation context)" ablation.
	UseContext bool
	// ExactDiagnosis forces Violations/Diagnose down the reference dense
	// pipeline: full association matrix, no prescreen, no report caching.
	// The default sparse path evaluates only the trained invariant edges
	// with a conservative prescreen in front of the exact computation;
	// it produces identical verdicts (the prescreen certificate is
	// one-sided, pinned by the equivalence tests), so this switch exists as
	// an operational escape hatch and as the reference arm of those tests,
	// not because the answers differ.
	ExactDiagnosis bool
	// Lifecycle configures the drift-aware invariant lifecycle (edge
	// health, quarantine, shadow generations); disabled by default —
	// train-once behaviour — and enabled explicitly by long-running
	// deployments (invarnetd). See LifecycleConfig.
	Lifecycle LifecycleConfig
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Epsilon:    invariant.DefaultEpsilon,
		Tau:        invariant.DefaultTau,
		Detect:     detect.DefaultConfig(),
		Assoc:      mic.MIC,
		AssocName:  "mic",
		Similarity: signature.Jaccard,
		TopK:       5,
		UseContext: true,
	}
}

// profileShards is the number of stripes in the profile registry. Lookups
// take one shard's read lock only; profile state itself is guarded by the
// profile, so the stripes only serialise registry mutation.
const profileShards = 16

type profileShard struct {
	mu       sync.RWMutex
	profiles map[Context]*Profile
}

// System is one InvarNet-X deployment: a configuration plus the striped
// registry of per-context profiles.
type System struct {
	cfg    Config
	shards [profileShards]profileShard
}

// Errors reported by the online path.
var (
	// ErrNoModel means the context has no trained performance model.
	ErrNoModel = errors.New("core: no performance model for context")
	// ErrNoInvariants means the context has no trained invariant set.
	ErrNoInvariants = errors.New("core: no invariants for context")
)

// maxPoolCap and maxAssocCacheSize clamp the per-profile bounds a config can
// request. A multi-tenant deployment multiplies both by its profile count, so
// a fat-fingered "unlimited-ish" number must not be able to turn one profile
// into a multi-gigabyte arena; genuinely unbounded pools remain available via
// the explicit negative opt-in.
const (
	maxPoolCap        = 1 << 16
	maxAssocCacheSize = 1 << 20
)

// maxConsecutive clamps the consecutive-anomaly window: a detector that
// needs more than 1024 consecutive anomalous samples will never alert
// within any realistic job, which is a configuration bug, not a policy.
const maxConsecutive = 1024

// Validate reports the first nonsensical field of the configuration, before
// defaulting: zero values (which New replaces with paper defaults) and the
// documented negative sentinels for AssocCacheSize/PoolCap are fine, but
// NaN/Inf or negative thresholds, out-of-range probabilities and unknown
// enum values are rejected. Long-running services (invarnetd) should call
// Validate on operator-supplied configuration and refuse to boot on error;
// New itself panics on an invalid config rather than building a registry
// that would misbehave on every later call.
func (c Config) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	switch {
	case bad(c.Epsilon) || c.Epsilon > 1:
		return fmt.Errorf("core: Epsilon %v outside (0,1] (violation threshold over MIC scores)", c.Epsilon)
	case bad(c.Tau) || c.Tau > 1:
		return fmt.Errorf("core: Tau %v outside (0,1] (invariant stability threshold)", c.Tau)
	case bad(c.Detect.Beta):
		return fmt.Errorf("core: Detect.Beta %v is not a usable threshold factor", c.Detect.Beta)
	case c.Detect.Consecutive < 0 || c.Detect.Consecutive > maxConsecutive:
		return fmt.Errorf("core: Detect.Consecutive %d outside [0,%d]", c.Detect.Consecutive, maxConsecutive)
	case c.TopK < 0:
		return fmt.Errorf("core: TopK %d is negative (0 means unranked-all)", c.TopK)
	case bad(c.SigMinScore) || c.SigMinScore > 1:
		return fmt.Errorf("core: SigMinScore %v outside [0,1] (similarity floor over signature matches)", c.SigMinScore)
	case c.AssocCacheSize > maxAssocCacheSize:
		return fmt.Errorf("core: AssocCacheSize %d exceeds the %d per-profile clamp", c.AssocCacheSize, maxAssocCacheSize)
	case c.PoolCap > maxPoolCap:
		return fmt.Errorf("core: PoolCap %d exceeds the %d per-profile clamp", c.PoolCap, maxPoolCap)
	}
	switch c.Detect.Rule {
	case detect.BetaMax, detect.MaxMin, detect.P95:
	default:
		return fmt.Errorf("core: unknown detection rule %v", c.Detect.Rule)
	}
	switch c.Similarity {
	case signature.Jaccard, signature.Hamming, signature.Cosine:
	default:
		return fmt.Errorf("core: unknown similarity measure %v", c.Similarity)
	}
	return c.Lifecycle.validate()
}

// New builds a System; zero-valued cfg fields are defaulted. The config is
// validated once here — New panics on NaN/negative thresholds or unknown
// enum values (see Config.Validate), so no System can exist around a config
// that would corrupt every later training and diagnosis call. Services
// taking operator input should pre-flight with Validate and report the
// error instead of crashing.
func New(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core.New: invalid config: %v", err))
	}
	def := DefaultConfig()
	if cfg.Epsilon == 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.Tau == 0 {
		cfg.Tau = def.Tau
	}
	if cfg.Detect.Beta == 0 {
		cfg.Detect.Beta = def.Detect.Beta
	}
	if cfg.Detect.Consecutive == 0 {
		cfg.Detect.Consecutive = def.Detect.Consecutive
	}
	if cfg.Assoc == nil {
		cfg.Assoc = def.Assoc
		cfg.AssocName = def.AssocName
	}
	// Auto-wire the batch MIC path only when Assoc is literally the stock
	// mic.MIC — a custom Assoc (arx, a wrapped MIC) must not be silently
	// replaced by a scorer computing a different measure.
	if cfg.BatchAssoc == nil {
		cfg.BatchAssoc = BatchFor(cfg.Assoc)
	}
	s := &System{cfg: cfg}
	for i := range s.shards {
		s.shards[i].profiles = make(map[Context]*Profile)
	}
	return s
}

// isStockMIC reports whether f is exactly mic.MIC. Func values are not
// comparable in Go; the code-pointer comparison is the standard escape
// hatch and is only used as a conservative gate for the batch fast path.
func isStockMIC(f invariant.AssociationFunc) bool {
	if f == nil {
		return false
	}
	return reflect.ValueOf(f).Pointer() == reflect.ValueOf(invariant.AssociationFunc(mic.MIC)).Pointer()
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// key maps a context to its profile key; without operation context every
// context maps onto the single global profile.
func (s *System) key(ctx Context) Context {
	if s.cfg.UseContext {
		return ctx
	}
	return Context{}
}

// shardFor picks the registry stripe of a profile key (FNV-1a over the
// workload and IP).
func (s *System) shardFor(key Context) *profileShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.Workload); i++ {
		h ^= uint64(key.Workload[i])
		h *= prime64
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime64
	for i := 0; i < len(key.IP); i++ {
		h ^= uint64(key.IP[i])
		h *= prime64
	}
	return &s.shards[h%profileShards]
}

// lookup returns ctx's profile if one exists — the read path: online
// operations on an untrained context must fail with ErrNoModel /
// ErrNoInvariants, not materialise empty profiles.
func (s *System) lookup(ctx Context) (*Profile, bool) {
	key := s.key(ctx)
	sh := s.shardFor(key)
	sh.mu.RLock()
	p, ok := sh.profiles[key]
	sh.mu.RUnlock()
	return p, ok
}

// Profile returns ctx's profile, creating it on first use. Without
// operation context every ctx yields the same global profile.
func (s *System) Profile(ctx Context) *Profile {
	key := s.key(ctx)
	sh := s.shardFor(key)
	sh.mu.RLock()
	p, ok := sh.profiles[key]
	sh.mu.RUnlock()
	if ok {
		return p
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p, ok = sh.profiles[key]; ok {
		return p
	}
	p = newProfile(s, key)
	sh.profiles[key] = p
	return p
}

// Profiles returns every registered profile, sorted by context for
// deterministic iteration.
func (s *System) Profiles() []*Profile {
	var out []*Profile
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, p := range sh.profiles {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].key.Workload != out[b].key.Workload {
			return out[a].key.Workload < out[b].key.Workload
		}
		return out[a].key.IP < out[b].key.IP
	})
	return out
}

// TrainPerformanceModel fits the ARIMA CPI model and thresholds for ctx
// from the CPI traces of N normal runs. Without operation context the
// traces pool with everything trained before, and the single global model
// is refit on the whole pool.
func (s *System) TrainPerformanceModel(ctx Context, cpiTraces [][]float64) error {
	return s.Profile(ctx).trainPerformanceModel(ctx, cpiTraces)
}

// TrainInvariants runs Algorithm 1 for ctx over the metric traces of N
// normal runs. Without operation context the runs pool with everything
// trained before: Algorithm 1's stability test then only keeps pairs whose
// association holds on *every* node and workload seen — which is exactly
// how the global variant loses most of its invariants on a heterogeneous
// platform.
func (s *System) TrainInvariants(ctx Context, runs []*metrics.Trace) error {
	return s.Profile(ctx).trainInvariants(ctx, runs)
}

// Detector returns the trained detector for ctx.
func (s *System) Detector(ctx Context) (*detect.Detector, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoModel, ctx)
	}
	return p.detectorFor(ctx)
}

// Invariants returns the trained invariant set for ctx.
func (s *System) Invariants(ctx Context) (*invariant.Set, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoInvariants, ctx)
	}
	return p.invariantsFor(ctx)
}

// NewMonitor starts online anomaly detection for a job running under ctx,
// seeded with the first CPI samples of the run.
func (s *System) NewMonitor(ctx Context, warmup []float64) (*detect.Monitor, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoModel, ctx)
	}
	return p.newMonitorFor(ctx, warmup)
}

// Violations computes the violation report of an abnormal metric window
// against ctx's invariants — one masked-first pipeline for clean and
// degraded telemetry alike (see Profile.Violations).
func (s *System) Violations(ctx Context, abnormal *metrics.Trace) (*ViolationReport, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoInvariants, ctx)
	}
	return p.violations(ctx, abnormal)
}

// traceDegraded reports whether the abnormal window needs pair masking: it
// carries a validity mask, or raw non-finite samples (telemetry gaps stored
// as NaN without a mask).
func traceDegraded(tr *metrics.Trace) bool {
	if tr.Masked() {
		return true
	}
	for _, row := range tr.Rows {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// BuildSignature records the violation tuple of an investigated problem in
// the signature database: "Once the performance problem is resolved, a new
// signature will be added into the signature base."
func (s *System) BuildSignature(ctx Context, problem string, abnormal *metrics.Trace) error {
	_, _, err := s.BuildSignatureEntry(ctx, problem, abnormal)
	return err
}

// BuildSignatureEntry is BuildSignature returning the stored entry and
// whether it was new (false when an identical signature — same context, same
// (problem, tuple) fingerprint — was already present). The serving layer uses
// the entry to replicate freshly learned signatures to fleet peers.
func (s *System) BuildSignatureEntry(ctx Context, problem string, abnormal *metrics.Trace) (signature.Entry, bool, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return signature.Entry{}, false, fmt.Errorf("%w: %v", ErrNoInvariants, ctx)
	}
	return p.buildSignature(ctx, problem, abnormal)
}

// MergeSignature routes an already-built entry to the profile its context
// names (created on first use) and stores it unless an identical one is
// present. This is the apply path for signatures learned elsewhere — fleet
// anti-entropy deltas, offline imports — and it reports whether the entry
// was new.
func (s *System) MergeSignature(e signature.Entry) bool {
	return s.Profile(loadedCtx(e.Workload, e.IP)).mergeSignature(e)
}

// SignatureCount returns the number of stored signatures across profiles.
func (s *System) SignatureCount() int {
	n := 0
	for _, p := range s.Profiles() {
		n += p.SignatureCount()
	}
	return n
}

// SignatureSnapshot returns a deep copy of the signature entries of every
// profile, in deterministic profile order. Unlike the live per-profile
// databases it is safe to read, match and audit while concurrent
// BuildSignature calls keep writing.
func (s *System) SignatureSnapshot() *signature.DB {
	out := &signature.DB{}
	for _, p := range s.Profiles() {
		for _, e := range p.SignatureSnapshot().Entries() {
			out.Add(e)
		}
	}
	return out
}

// Diagnosis is the output of cause inference: a ranked cause list plus the
// violated-pair hints for unknown problems.
type Diagnosis struct {
	Context Context
	Tuple   signature.Tuple
	// Known flags which invariants were checkable in the abnormal window;
	// under degraded telemetry, invariants whose metrics were unavailable
	// are unknown — neither holding nor violated. Nil means every
	// invariant was checkable.
	Known []bool
	// Coverage is the fraction of invariants that were checkable (1 on a
	// clean window).
	Coverage float64
	// Confidence is the coverage-weighted score of the top cause: the
	// best signature similarity, computed only over known invariants and
	// scaled by Coverage. 0 when no cause matched or nothing was
	// checkable.
	Confidence float64
	// Causes is ranked most-probable-first; empty when the database holds
	// nothing similar ("we provide some hints and leave the problem to
	// the system administrators"). Scores are weighted by Coverage, so a
	// perfect match over half-blind telemetry scores 0.5, not 1.
	Causes []signature.Match
	// Hints names the violated metric pairs, e.g.
	// "mem.pagefaults-cpu.user".
	Hints []string
	// Unknown names the metric pairs whose invariants could not be
	// checked, so operators can see what the diagnosis is blind to.
	Unknown []string
}

// RootCause returns the top-ranked cause, or "" when unknown.
func (d *Diagnosis) RootCause() string {
	if len(d.Causes) == 0 {
		return ""
	}
	return d.Causes[0].Problem
}

// pairName renders an invariant pair as a hint string, e.g.
// "mem.pagefaults-cpu.user".
func pairName(p invariant.Pair) string {
	if p.I < len(metrics.Names) && p.J < len(metrics.Names) {
		return metrics.Names[p.I] + "-" + metrics.Names[p.J]
	}
	return fmt.Sprintf("m%d-m%d", p.I, p.J)
}

// Diagnose runs cause inference on an abnormal metric window for ctx (see
// Profile.Diagnose for the pipeline).
func (s *System) Diagnose(ctx Context, abnormal *metrics.Trace) (*Diagnosis, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoInvariants, ctx)
	}
	return p.diagnose(ctx, abnormal)
}

// DiagnoseHinted is Diagnose with serving-layer reuse state (a window
// fingerprint and/or an incrementally maintained scorer; see WindowHint).
func (s *System) DiagnoseHinted(ctx Context, abnormal *metrics.Trace, hint *WindowHint) (*Diagnosis, error) {
	p, ok := s.lookup(ctx)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoInvariants, ctx)
	}
	return p.diagnoseHinted(ctx, abnormal, hint)
}

// SparseStats aggregates the sparse diagnosis path's edge counters across
// every profile: pairs certified by the prescreen, pairs that ran the exact
// association, and pairs reported unknown under degraded telemetry.
func (s *System) SparseStats() SparseStats {
	var st SparseStats
	for _, p := range s.Profiles() {
		ps := p.SparseStats()
		st.Screened += ps.Screened
		st.Exact += ps.Exact
		st.Skipped += ps.Skipped
	}
	return st
}

// SignatureScanStats aggregates the signature best-match scan counters
// across every profile: entries considered and entries resolved by an early
// exit (precomputed-popcount fast paths, stale-length skips, MinScore
// pruning).
func (s *System) SignatureScanStats() (entries, earlyExits int64) {
	for _, p := range s.Profiles() {
		e, x := p.sigs.ScanStats()
		entries += e
		earlyExits += x
	}
	return entries, earlyExits
}

// SignatureIndexStats aggregates the signature retrieval-index counters
// across every profile: index structure totals plus the index-vs-scan query
// split (see signature.IndexStats).
func (s *System) SignatureIndexStats() signature.IndexStats {
	var st signature.IndexStats
	for _, p := range s.Profiles() {
		st.Add(p.SignatureIndexStats())
	}
	return st
}

// ProfileStats snapshots every registered profile for reporting, in
// deterministic context order.
func (s *System) ProfileStats() []ProfileStats {
	profiles := s.Profiles()
	out := make([]ProfileStats, len(profiles))
	for i, p := range profiles {
		out[i] = p.Stats()
	}
	return out
}

// AssocCacheStats aggregates the association-cache counters of every
// profile. Zero-valued when caching is disabled.
func (s *System) AssocCacheStats() CacheStats {
	var st CacheStats
	for _, p := range s.Profiles() {
		ps := p.CacheStats()
		st.Hits += ps.Hits
		st.Misses += ps.Misses
		st.Entries += ps.Entries
	}
	return st
}

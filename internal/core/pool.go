package core

// DefaultPoolCap is the default bound on each profile's training pools
// (Config.PoolCap zero). 512 windows is far beyond the N≈10 normal runs the
// paper trains on, yet keeps a long-lived retraining loop from growing the
// pools — and every refit over them — without bound.
const DefaultPoolCap = 512

// trainingPool accumulates training material across Train* calls with
// fingerprint deduplication and FIFO capacity eviction. Identical appended
// items (same content fingerprint) are dropped, so retraining over the same
// traces cannot grow the pool; at capacity the oldest item is evicted.
// Not synchronised — callers hold the owning profile's lock.
type trainingPool[T any] struct {
	cap   int // <0 unbounded
	seen  map[uint64]struct{}
	items []T
	fps   []uint64
}

// newTrainingPool returns an empty pool: cap 0 selects DefaultPoolCap,
// negative cap disables the bound (dedupe stays on).
func newTrainingPool[T any](cap int) trainingPool[T] {
	if cap == 0 {
		cap = DefaultPoolCap
	}
	return trainingPool[T]{cap: cap, seen: make(map[uint64]struct{})}
}

// add appends item unless one with the same fingerprint is already pooled,
// evicting the oldest items first when the pool is at capacity. It reports
// whether the item was added.
func (p *trainingPool[T]) add(fp uint64, item T) bool {
	if _, dup := p.seen[fp]; dup {
		return false
	}
	if p.cap > 0 {
		for len(p.items) >= p.cap {
			delete(p.seen, p.fps[0])
			// Shift rather than re-slice so evicted heads don't pin the
			// backing arrays forever.
			copy(p.items, p.items[1:])
			var zero T
			p.items[len(p.items)-1] = zero
			p.items = p.items[:len(p.items)-1]
			copy(p.fps, p.fps[1:])
			p.fps = p.fps[:len(p.fps)-1]
		}
	}
	p.seen[fp] = struct{}{}
	p.items = append(p.items, item)
	p.fps = append(p.fps, fp)
	return true
}

// snapshot returns a copy of the pooled items in insertion order.
func (p *trainingPool[T]) snapshot() []T {
	return append([]T(nil), p.items...)
}

// size returns the number of pooled items.
func (p *trainingPool[T]) size() int { return len(p.items) }

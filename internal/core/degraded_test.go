package core

import (
	"math"
	"testing"

	"invarnetx/internal/metrics"
	"invarnetx/internal/stats"
	"invarnetx/internal/telemetry"
)

// dropMetricTicks masks out a block of ticks for a set of metric rows,
// simulating lost samples on specific counters.
func dropMetricTicks(tr *metrics.Trace, rows []int, from, to int) *metrics.Trace {
	out := metrics.NewTrace(tr.NodeIP, tr.Context)
	for t := 0; t < tr.Len(); t++ {
		sample := make([]float64, metrics.Count)
		valid := make([]bool, metrics.Count)
		for m := 0; m < metrics.Count; m++ {
			sample[m] = tr.Rows[m][t]
			valid[m] = true
		}
		for _, m := range rows {
			if t >= from && t < to {
				sample[m] = math.NaN()
				valid[m] = false
			}
		}
		if err := out.AddMasked(sample, valid, tr.CPI[t], true); err != nil {
			panic(err)
		}
	}
	return out
}

func TestDiagnoseCleanWindowFullCoverage(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 700)
	rng := stats.NewRNG(701)
	fault := map[int]bool{0: true, 1: true}
	if err := s.BuildSignature(ctx, "fault-a", synthTrace(rng.Fork(1), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	diag, err := s.Diagnose(ctx, synthTrace(rng.Fork(2), 40, 8, fault))
	if err != nil {
		t.Fatal(err)
	}
	if diag.Coverage != 1 {
		t.Fatalf("clean window coverage = %v, want 1", diag.Coverage)
	}
	if diag.Known != nil || diag.Unknown != nil {
		t.Fatalf("clean window reported unknowns: %v", diag.Unknown)
	}
	if diag.RootCause() != "fault-a" {
		t.Fatalf("root cause = %q", diag.RootCause())
	}
	if diag.Confidence != diag.Causes[0].Score {
		t.Fatalf("confidence %v != top score %v", diag.Confidence, diag.Causes[0].Score)
	}
}

func TestDiagnoseMarksLostMetricsUnknown(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 710)
	rng := stats.NewRNG(711)
	fault := map[int]bool{0: true, 1: true}
	if err := s.BuildSignature(ctx, "fault-a", synthTrace(rng.Fork(1), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	// Lose metric 7 for nearly the whole window: every invariant touching
	// it becomes unknown; the fault signature on metrics 0/1 must still be
	// recovered from the surviving invariants.
	abnormal := dropMetricTicks(synthTrace(rng.Fork(2), 40, 8, fault), []int{7}, 0, 38)
	diag, err := s.Diagnose(ctx, abnormal)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Known == nil {
		t.Fatal("degraded window did not produce a known mask")
	}
	if diag.Coverage >= 1 || diag.Coverage <= 0 {
		t.Fatalf("coverage = %v, want in (0,1)", diag.Coverage)
	}
	if len(diag.Unknown) == 0 {
		t.Fatal("no unknown invariants reported for a lost metric")
	}
	set, err := s.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range set.SortedPairs() {
		touches7 := p.I == 7 || p.J == 7
		if touches7 && diag.Known[k] {
			t.Fatalf("invariant %v touches the lost metric but is known", p)
		}
		if touches7 && diag.Tuple[k] {
			t.Fatalf("invariant %v is unknown but counted as violated", p)
		}
	}
	if diag.RootCause() != "fault-a" {
		t.Fatalf("root cause = %q, want fault-a despite the lost metric", diag.RootCause())
	}
	if diag.Confidence <= 0 || diag.Confidence > diag.Coverage {
		t.Fatalf("confidence = %v, want in (0, coverage=%v]", diag.Confidence, diag.Coverage)
	}
}

// TestDiagnoseUnderTelemetryFaults is the acceptance scenario: 20%% random
// sample loss plus one full node outage injected through internal/telemetry.
// The pipeline must complete diagnosis without panicking, mark unavailable
// invariants unknown, and report a confidence score.
func TestDiagnoseUnderTelemetryFaults(t *testing.T) {
	cfg := DefaultConfig()
	ctxA := Context{Workload: "wordcount", IP: "10.0.0.2"}
	ctxB := Context{Workload: "wordcount", IP: "10.0.0.3"}
	s := New(cfg)
	rng := stats.NewRNG(720)
	for _, ctx := range []Context{ctxA, ctxB} {
		var runs []*metrics.Trace
		var cpis [][]float64
		for i := 0; i < 6; i++ {
			tr := synthTrace(rng.Fork(int64(len(runs))+10*int64(len(cpis))), traceLen, 8, nil)
			runs = append(runs, tr)
			cpis = append(cpis, tr.CPI)
		}
		if err := s.TrainPerformanceModel(ctx, cpis); err != nil {
			t.Fatal(err)
		}
		if err := s.TrainInvariants(ctx, runs); err != nil {
			t.Fatal(err)
		}
	}
	fault := map[int]bool{0: true, 1: true}
	if err := s.BuildSignature(ctxA, "fault-a", synthTrace(rng.Fork(100), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildSignature(ctxB, "fault-a", synthTrace(rng.Fork(101), 40, 8, fault)); err != nil {
		t.Fatal(err)
	}

	tcfg, err := telemetry.ParseFaultSpec("drop=0.2,outage=" + ctxB.IP)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(tcfg, stats.NewRNG(721))

	// Node A: 20% sample loss. Diagnosis completes with partial coverage
	// and still names the fault.
	cleanA := synthTrace(rng.Fork(102), 60, 8, fault)
	cleanA.NodeIP = ctxA.IP
	degA, _, err := col.Degrade(cleanA)
	if err != nil {
		t.Fatal(err)
	}
	diagA, err := s.Diagnose(ctxA, degA)
	if err != nil {
		t.Fatal(err)
	}
	if diagA.Coverage <= 0 || diagA.Coverage > 1 {
		t.Fatalf("node A coverage = %v", diagA.Coverage)
	}
	if diagA.RootCause() != "fault-a" {
		t.Fatalf("node A root cause = %q under 20%% loss", diagA.RootCause())
	}
	if diagA.Confidence <= 0 {
		t.Fatalf("node A confidence = %v, want > 0", diagA.Confidence)
	}

	// Node B: full agent outage. Every invariant is unknown, nothing is
	// reported violated, confidence is zero — and nothing panics.
	cleanB := synthTrace(rng.Fork(103), 60, 8, fault)
	cleanB.NodeIP = ctxB.IP
	degB, _, err := col.Degrade(cleanB)
	if err != nil {
		t.Fatal(err)
	}
	if degB.ValidFraction() != 0 {
		t.Fatalf("outage node ValidFraction = %v, want 0", degB.ValidFraction())
	}
	diagB, err := s.Diagnose(ctxB, degB)
	if err != nil {
		t.Fatal(err)
	}
	if diagB.Coverage != 0 {
		t.Fatalf("outage coverage = %v, want 0", diagB.Coverage)
	}
	for k := range diagB.Tuple {
		if diagB.Tuple[k] {
			t.Fatal("outage window reported a violated invariant")
		}
		if diagB.Known[k] {
			t.Fatal("outage window reported a known invariant")
		}
	}
	if diagB.Confidence != 0 {
		t.Fatalf("outage confidence = %v, want 0", diagB.Confidence)
	}
	if h := col.Health(ctxB.IP); h.Status != telemetry.Down {
		t.Fatalf("outage node health = %v, want down", h.Status)
	}
}

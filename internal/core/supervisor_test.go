package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invarnetx/internal/stats"
)

// recordingSleep captures backoff delays without waiting.
type recordingSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *recordingSleep) sleep(d time.Duration) {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
}

func (r *recordingSleep) snapshot() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.delays...)
}

func quietConfig(rs *recordingSleep) SupervisorConfig {
	return SupervisorConfig{
		BaseBackoff: time.Millisecond,
		Logf:        func(string, ...any) {},
		Sleep:       rs.sleep,
	}
}

func waitStatus(t *testing.T, sup *Supervisor, name string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := sup.Status(name)
		if ok && pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %q never reached the expected state: %+v", name, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorRestartsPanickingJobWithBackoff(t *testing.T) {
	rs := &recordingSleep{}
	sup := NewSupervisor(quietConfig(rs))
	defer sup.Stop()
	var attempts atomic.Int32
	done := make(chan struct{})
	err := sup.Supervise("mon", func(stop <-chan struct{}) error {
		n := attempts.Add(1)
		if n <= 3 {
			panic(fmt.Sprintf("poisoned CPI stream (attempt %d)", n))
		}
		close(done)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	st := waitStatus(t, sup, "mon", func(st JobStatus) bool { return !st.Running })
	if st.Restarts != 3 || st.GaveUp || st.Err != nil {
		t.Fatalf("status = %+v, want 3 restarts, no give-up", st)
	}
	if st.LastPanic != "poisoned CPI stream (attempt 3)" {
		t.Fatalf("LastPanic = %q", st.LastPanic)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	got := rs.snapshot()
	if len(got) != len(want) {
		t.Fatalf("backoffs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (exponential doubling)", i, got[i], want[i])
		}
	}
}

func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	rs := &recordingSleep{}
	cfg := quietConfig(rs)
	cfg.MaxRestarts = 3
	var logged atomic.Int32
	cfg.Logf = func(string, ...any) { logged.Add(1) }
	sup := NewSupervisor(cfg)
	defer sup.Stop()
	var attempts atomic.Int32
	if err := sup.Supervise("mon", func(stop <-chan struct{}) error {
		attempts.Add(1)
		panic("always")
	}); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, sup, "mon", func(st JobStatus) bool { return st.GaveUp })
	if st.Running || st.Restarts != 3 {
		t.Fatalf("status = %+v", st)
	}
	if n := attempts.Load(); n != 4 { // initial run + 3 restarts
		t.Fatalf("attempts = %d, want 4", n)
	}
	if logged.Load() == 0 {
		t.Fatal("give-up was not logged")
	}
}

func TestSupervisorBackoffCap(t *testing.T) {
	rs := &recordingSleep{}
	cfg := quietConfig(rs)
	cfg.MaxRestarts = 6
	cfg.BaseBackoff = time.Millisecond
	cfg.MaxBackoff = 4 * time.Millisecond
	sup := NewSupervisor(cfg)
	defer sup.Stop()
	if err := sup.Supervise("mon", func(stop <-chan struct{}) error { panic("x") }); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, sup, "mon", func(st JobStatus) bool { return st.GaveUp })
	for i, d := range rs.snapshot() {
		if d > 4*time.Millisecond {
			t.Fatalf("backoff %d = %v exceeds the cap", i, d)
		}
	}
}

func TestSupervisorJobErrorRecorded(t *testing.T) {
	rs := &recordingSleep{}
	sup := NewSupervisor(quietConfig(rs))
	defer sup.Stop()
	wantErr := fmt.Errorf("stream closed")
	if err := sup.Supervise("mon", func(stop <-chan struct{}) error { return wantErr }); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, sup, "mon", func(st JobStatus) bool { return !st.Running })
	if st.Err != wantErr || st.Restarts != 0 {
		t.Fatalf("status = %+v", st)
	}
	if len(rs.snapshot()) != 0 {
		t.Fatal("error return must not trigger backoff")
	}
}

func TestSupervisorRejectsDuplicatesAndStops(t *testing.T) {
	rs := &recordingSleep{}
	sup := NewSupervisor(quietConfig(rs))
	block := func(stop <-chan struct{}) error { <-stop; return nil }
	if err := sup.Supervise("mon", block); err != nil {
		t.Fatal(err)
	}
	if err := sup.Supervise("mon", block); err == nil {
		t.Fatal("duplicate job name accepted")
	}
	sup.Stop()
	st, ok := sup.Status("mon")
	if !ok || st.Running {
		t.Fatalf("after Stop: %+v", st)
	}
	if err := sup.Supervise("late", block); err == nil {
		t.Fatal("stopped supervisor accepted a job")
	}
}

// TestSuperviseMonitorPanicRecovery injects a panicking alert handler into
// a real supervised monitor: the panic is recovered, the monitor is rebuilt
// fresh, and the next anomalous burst still raises the alert.
func TestSuperviseMonitorPanicRecovery(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 730)
	rng := stats.NewRNG(731)
	normal := synthTrace(rng, traceLen, 8, nil)

	rs := &recordingSleep{}
	sup := NewSupervisor(quietConfig(rs))
	defer sup.Stop()

	samples := make(chan float64)
	alerts := make(chan Context, 64)
	var calls atomic.Int32
	onAlert := func(c Context) {
		if calls.Add(1) == 1 {
			panic("alert handler bug")
		}
		alerts <- c
	}
	if err := s.SuperviseMonitor(sup, "job-1", ctx, normal.CPI[:10], samples, onAlert); err != nil {
		t.Fatal(err)
	}

	feedBurst := func() {
		for i := 0; i < 10; i++ {
			samples <- 2.5
		}
	}
	feedBurst() // first alert panics inside the handler
	waitStatus(t, sup, "job-1", func(st JobStatus) bool { return st.Restarts == 1 })
	feedBurst() // the rebuilt monitor must alert again
	select {
	case c := <-alerts:
		if c != ctx {
			t.Fatalf("alert context = %v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert from the restarted monitor")
	}
	st, _ := sup.Status("job-1")
	if st.GaveUp || st.LastPanic != "alert handler bug" {
		t.Fatalf("status = %+v", st)
	}
	close(samples)
	waitStatus(t, sup, "job-1", func(st JobStatus) bool { return !st.Running })

	if _, err := s.Detector(Context{Workload: "none", IP: "none"}); err == nil {
		t.Fatal("sanity: unknown context should have no detector")
	}
	if err := s.SuperviseMonitor(sup, "job-2", Context{Workload: "none", IP: "none"}, nil, samples, nil); err == nil {
		t.Fatal("SuperviseMonitor accepted an untrained context")
	}
}

// TestSuperviseMonitorPermanentCrashGivesUp drives a monitor whose alert
// handler panics on every alert — the permanently-crashing case. The
// supervisor must retry exactly MaxRestarts times with growing backoff,
// then abandon the job and surface the failure through its status instead
// of hot-looping; the dead monitor must be detached from the registry.
func TestSuperviseMonitorPermanentCrashGivesUp(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.3"}
	s := trainSystem(t, DefaultConfig(), ctx, 911)
	rng := stats.NewRNG(912)
	normal := synthTrace(rng, traceLen, 8, nil)

	rs := &recordingSleep{}
	cfg := quietConfig(rs)
	cfg.MaxRestarts = 3
	sup := NewSupervisor(cfg)
	defer sup.Stop()

	samples := make(chan float64)
	var attempts atomic.Int32
	onAlert := func(Context) {
		attempts.Add(1)
		panic("permanently broken alert sink")
	}
	if err := s.SuperviseMonitor(sup, "doomed", ctx, normal.CPI[:10], samples, onAlert); err != nil {
		t.Fatal(err)
	}

	// Pump anomalous CPI until the job dies: each rebuilt monitor alerts
	// again, each alert panics again.
	stopFeed := make(chan struct{})
	var feed sync.WaitGroup
	feed.Add(1)
	go func() {
		defer feed.Done()
		for {
			select {
			case samples <- 2.5:
			case <-stopFeed:
				return
			}
		}
	}()

	st := waitStatus(t, sup, "doomed", func(st JobStatus) bool { return st.GaveUp })
	close(stopFeed)
	feed.Wait()

	if st.Running {
		t.Fatalf("gave-up job still marked running: %+v", st)
	}
	if st.Restarts != cfg.MaxRestarts {
		t.Fatalf("restarts = %d, want the cap %d", st.Restarts, cfg.MaxRestarts)
	}
	if st.LastPanic != "permanently broken alert sink" {
		t.Fatalf("LastPanic = %q, failure not surfaced via status", st.LastPanic)
	}

	// Bounded, not hot-looping: one initial attempt plus MaxRestarts
	// retries, every retry preceded by a backoff sleep, doubling until the
	// cap. A hot loop would blow straight past both counts.
	if n := attempts.Load(); n != int32(cfg.MaxRestarts)+1 {
		t.Fatalf("attempts = %d, want %d (initial + MaxRestarts)", n, cfg.MaxRestarts+1)
	}
	delays := rs.snapshot()
	if len(delays) != cfg.MaxRestarts {
		t.Fatalf("backoff sleeps = %v, want %d of them", delays, cfg.MaxRestarts)
	}
	for i := 1; i < len(delays); i++ {
		want := delays[i-1] * 2
		if want > cfg.MaxBackoff && cfg.MaxBackoff > 0 {
			want = cfg.MaxBackoff
		}
		if delays[i] != want {
			t.Fatalf("backoff %d = %v after %v, want doubling growth", i, delays[i], delays[i-1])
		}
	}

	// The crashed monitor must not linger in the profile's registry.
	if got := s.Profile(ctx).Monitors().Len(); got != 0 {
		t.Fatalf("registry still holds %d monitors after give-up", got)
	}
}

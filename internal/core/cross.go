package core

import (
	"fmt"
	"sort"
	"strings"

	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
)

// Cross-node, stage-scoped invariants (the spatio-temporal layer).
//
// An intra-node invariant couples two metrics of one (workload, node)
// context. A cross edge couples a metric on node A with a metric on node B
// during one execution stage: (metricA@nodeA, metricB@nodeB, stage). The
// fault classes that motivate it — shuffle slow links, partition-skew
// stragglers, replication-pipeline drag — leave every within-node coupling
// intact (a constant slowdown is invisible to a scale-invariant association
// measure) and break only the couplings between the culprit's flows and its
// peers' demand.
//
// Rather than a parallel engine, a cross profile is an ordinary Profile
// whose context key encodes the pair and stage: Workload stays the workload
// type, and IP is "nodeA~nodeB#stage" with nodeA < nodeB (unordered pair).
// Its traces are joint windows — the CrossMetricIdx subset of both nodes'
// metrics over the same stage-aligned ticks, stacked by metrics.JoinTraces
// — so the existing MIC batching, sparse prescreen, drift lifecycle,
// signature matching and per-profile persistence all apply unchanged. The
// only cross-specific behaviour in Profile is edge filtering (only pairs
// that span the two halves are kept after selection) and pair naming
// ("net.txmb@10.0.0.2~net.rxmb@10.0.0.3").

// CrossMetricIdx selects the per-node metrics that participate in cross
// edges: the flow metrics (disk and network directions, their latency and
// retransmission shadows) plus the compute-pressure metrics a straggler
// drags. Keeping the joint space at 2×11 metrics bounds training to 231
// candidate pairs per (workload, pair, stage) — comparable to one intra
// profile's 325.
var CrossMetricIdx = []int{
	0,  // cpu.user
	3,  // cpu.iowait
	6,  // load.runq
	12, // disk.readmb
	13, // disk.writemb
	15, // disk.util
	16, // disk.queue
	17, // net.rxmb
	18, // net.txmb
	21, // net.retransmits
	22, // net.rttms
}

// CrossKey identifies one cross profile: workload, unordered node pair and
// execution stage.
type CrossKey struct {
	Workload string
	NodeA    string // NodeA < NodeB
	NodeB    string
	Stage    string
}

// NewCrossKey builds a key with the node pair put in canonical order.
func NewCrossKey(workload, nodeA, nodeB, stage string) CrossKey {
	if nodeB < nodeA {
		nodeA, nodeB = nodeB, nodeA
	}
	return CrossKey{Workload: workload, NodeA: nodeA, NodeB: nodeB, Stage: stage}
}

// Context returns the registry context of the cross profile. The IP field
// encodes "nodeA~nodeB#stage"; neither '~' nor '#' occurs in node IPs or
// needs escaping in persistence filenames, so cross profiles ride the
// per-profile save/load path as-is.
func (k CrossKey) Context() Context {
	return Context{Workload: k.Workload, IP: k.NodeA + "~" + k.NodeB + "#" + k.Stage}
}

// String renders the key for reports: "sort 10.0.0.2~10.0.0.3 #reduce".
func (k CrossKey) String() string {
	return fmt.Sprintf("%s %s~%s #%s", k.Workload, k.NodeA, k.NodeB, k.Stage)
}

// ParseCrossContext recognises a cross-profile context and decodes its key.
// Intra-node contexts (no '~' in the IP) return ok=false.
func ParseCrossContext(ctx Context) (CrossKey, bool) {
	tilde := strings.IndexByte(ctx.IP, '~')
	if tilde < 0 {
		return CrossKey{}, false
	}
	rest := ctx.IP[tilde+1:]
	hash := strings.IndexByte(rest, '#')
	if hash < 0 {
		return CrossKey{}, false
	}
	return CrossKey{
		Workload: ctx.Workload,
		NodeA:    ctx.IP[:tilde],
		NodeB:    rest[:hash],
		Stage:    rest[hash+1:],
	}, true
}

// crossScope is the per-profile record of cross identity, parsed once at
// profile construction. k is the per-node half-width of the joint metric
// space: joint index i < k lives on NodeA, i >= k on NodeB.
type crossScope struct {
	key CrossKey
	k   int
}

// metricName renders one joint-space metric index as "name@node".
func (c *crossScope) metricName(i int) string {
	node := c.key.NodeA
	if i >= c.k {
		i -= c.k
		node = c.key.NodeB
	}
	if i < len(CrossMetricIdx) && CrossMetricIdx[i] < len(metrics.Names) {
		return metrics.Names[CrossMetricIdx[i]] + "@" + node
	}
	return fmt.Sprintf("m%d@%s", i, node)
}

// pairName renders a joint-space pair as a cross hint, e.g.
// "net.txmb@10.0.0.2~net.rxmb@10.0.0.3".
func (c *crossScope) pairName(p invariant.Pair) string {
	return c.metricName(p.I) + "~" + c.metricName(p.J)
}

// pairLabel names an invariant pair in the profile's own coordinate space:
// the 26 collectl metrics for intra-node profiles, "name@node" halves for
// cross profiles.
func (p *Profile) pairLabel(pr invariant.Pair) string {
	if p.cross != nil {
		return p.cross.pairName(pr)
	}
	return pairName(pr)
}

// filterCrossPairs restricts a selected set over the 2k joint metric space
// to the pairs spanning the two nodes (I in the first half, J in the
// second).
func filterCrossPairs(set *invariant.Set, k int) *invariant.Set {
	base := make(map[invariant.Pair]float64)
	for pr, v := range set.Base {
		if pr.I < k && pr.J >= k {
			base[pr] = v
		}
	}
	return invariant.NewSet(set.M, base)
}

// DefaultStageWindow is the length, in samples, of a stage-aligned training
// or diagnosis window. Fixed-length windows keep MIC grid resolution (which
// depends on sample count) comparable between training and diagnosis; 10
// samples clears mic/invariant MinSamples with headroom while fitting the
// shortest simulated stage (a 12-tick shuffle round).
const DefaultStageWindow = 10

// CrossWindows cuts stage-aligned joint windows from two nodes' traces: for
// every occurrence of the stage (per a's stage marks; both traces come from
// the same cluster timeline) whose span holds at least win samples, the
// first win ticks of both traces are joined over CrossMetricIdx. win <= 0
// selects DefaultStageWindow.
func CrossWindows(a, b *metrics.Trace, stage string, win int) ([]*metrics.Trace, error) {
	if win <= 0 {
		win = DefaultStageWindow
	}
	var out []*metrics.Trace
	for _, w := range a.StageWindows() {
		if w.Stage != stage || w.Hi-w.Lo < win {
			continue
		}
		joint, err := joinSlice(a, b, w.Lo, w.Lo+win)
		if err != nil {
			return nil, fmt.Errorf("core: joining %s windows: %w", stage, err)
		}
		out = append(out, joint)
	}
	return out, nil
}

// joinSlice slices both traces to [lo, hi) and joins them over
// CrossMetricIdx.
func joinSlice(a, b *metrics.Trace, lo, hi int) (*metrics.Trace, error) {
	as, err := a.Slice(lo, hi)
	if err != nil {
		return nil, err
	}
	bs, err := b.Slice(lo, hi)
	if err != nil {
		return nil, err
	}
	return metrics.JoinTraces(as, bs, CrossMetricIdx)
}

// CrossWindowAt cuts the single stage-aligned joint diagnosis window
// containing tick: the win samples starting at the stage occurrence's
// beginning, shifted right (but kept inside the stage) so the window covers
// the tick when the stage is long. Returns nil when tick falls in no
// occurrence of the stage long enough to window.
func CrossWindowAt(a, b *metrics.Trace, stage string, tick, win int) (*metrics.Trace, error) {
	if win <= 0 {
		win = DefaultStageWindow
	}
	for _, w := range a.StageWindows() {
		if w.Stage != stage || tick < w.Lo || tick >= w.Hi || w.Hi-w.Lo < win {
			continue
		}
		lo := tick - win + 1
		if lo < w.Lo {
			lo = w.Lo
		}
		if lo+win > w.Hi {
			lo = w.Hi - win
		}
		return joinSlice(a, b, lo, lo+win)
	}
	return nil, nil
}

// TrainCrossInvariants trains the cross profile for key over joint windows
// (as produced by CrossWindows): Algorithm 1 over the 2K joint metric
// space, then restricted to the pairs that span the two nodes.
func (s *System) TrainCrossInvariants(key CrossKey, joints []*metrics.Trace) error {
	return s.TrainInvariants(key.Context(), joints)
}

// BuildCrossSignature records a problem signature on the cross profile.
// Problem labels carry the culprit node ("xlink@10.0.0.3"), so a match on
// any pair profile recovers the (node, stage) localisation.
func (s *System) BuildCrossSignature(key CrossKey, problem string, joint *metrics.Trace) error {
	return s.BuildSignature(key.Context(), problem, joint)
}

// DiagnoseCross runs cause inference for one cross profile over a joint
// stage window.
func (s *System) DiagnoseCross(key CrossKey, joint *metrics.Trace) (*Diagnosis, error) {
	return s.Diagnose(key.Context(), joint)
}

// SpatialVerdict is a diagnosis localised to (node, stage): the outcome of
// merging the cross-profile diagnoses of one alert.
type SpatialVerdict struct {
	// Problem is the diagnosed fault kind (the signature label with the
	// node suffix stripped); empty when no cross profile matched.
	Problem string
	// Node is the culprit node and Stage the execution stage the verdict
	// localises to.
	Node  string
	Stage string
	// Score is the winning (coverage-weighted) signature similarity.
	Score float64
	// Source is the cross profile that produced the verdict.
	Source CrossKey
	// Diag is the winning profile's full diagnosis.
	Diag *Diagnosis
}

// SplitCulprit decodes a cross signature label "kind@node" into its parts;
// labels without '@' return the whole label and an empty node.
func SplitCulprit(problem string) (kind, node string) {
	if i := strings.LastIndexByte(problem, '@'); i >= 0 {
		return problem[:i], problem[i+1:]
	}
	return problem, ""
}

// MergeCrossDiagnoses reduces the per-pair cross diagnoses of one alert to a
// single (node, stage) verdict: the diagnosis with the highest confidence
// wins. Confidence is per-pair signature similarity, so the pair whose joint
// window most precisely reproduces a stored fingerprint decides — summing
// votes across pairs would let several weak noise matches outvote one sharp
// one. Ties break by context string for determinism. Returns nil when no
// diagnosis names a cause.
func MergeCrossDiagnoses(diags []*Diagnosis) *SpatialVerdict {
	var top *Diagnosis
	for _, d := range diags {
		if d == nil || d.RootCause() == "" {
			continue
		}
		if top == nil || d.Confidence > top.Confidence ||
			(d.Confidence == top.Confidence && d.Context.String() < top.Context.String()) {
			top = d
		}
	}
	if top == nil {
		return nil
	}
	key, _ := ParseCrossContext(top.Context)
	kind, node := SplitCulprit(top.RootCause())
	return &SpatialVerdict{
		Problem: kind,
		Node:    node,
		Stage:   key.Stage,
		Score:   top.Confidence,
		Source:  key,
		Diag:    top,
	}
}

// CrossProfileStats is the operator-facing snapshot of one cross profile.
type CrossProfileStats struct {
	Key         CrossKey
	Edges       int // trained cross edges
	Quarantined int // of them, drift-quarantined
	Signatures  int
}

// CrossProfileStats snapshots every cross profile, sorted by key.
func (s *System) CrossProfileStats() []CrossProfileStats {
	var out []CrossProfileStats
	for _, p := range s.Profiles() {
		if p.cross == nil {
			continue
		}
		st := p.Stats()
		out = append(out, CrossProfileStats{
			Key:         p.cross.key,
			Edges:       st.Invariants,
			Quarantined: st.Lifecycle.Quarantined,
			Signatures:  st.Signatures,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key.String() < out[b].Key.String() })
	return out
}

// CrossStats aggregates the spatio-temporal layer across profiles.
type CrossStats struct {
	Profiles    int `json:"profiles"`
	Edges       int `json:"edges"`
	Quarantined int `json:"quarantined"`
	Signatures  int `json:"signatures"`
}

// CrossStats totals the cross-profile layer for /v1/stats.
func (s *System) CrossStats() CrossStats {
	var st CrossStats
	for _, ps := range s.CrossProfileStats() {
		st.Profiles++
		st.Edges += ps.Edges
		st.Quarantined += ps.Quarantined
		st.Signatures += ps.Signatures
	}
	return st
}

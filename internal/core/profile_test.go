package core

import (
	"fmt"
	"sync"
	"testing"

	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
	"invarnetx/internal/signature"
	"invarnetx/internal/stats"
)

// TestCleanWindowDiagnosisPinned reimplements the pre-profile clean-window
// pipeline inline (batch-scored matrix → Violations → context-scoped Match
// → BestProblem → TopK) and pins Diagnose bit-identical to it: same tuple,
// nil Known, Coverage 1, and the exact same ranked causes with the exact
// same scores. The masked-first unification must make the clean window the
// all-known case, not a slightly different computation.
func TestCleanWindowDiagnosisPinned(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 810)
	rng := stats.NewRNG(811)
	faultA := map[int]bool{0: true, 1: true}
	faultB := map[int]bool{5: true, 6: true, 7: true}
	sigWinA := synthTrace(rng.Fork(1), 40, 8, faultA)
	sigWinB := synthTrace(rng.Fork(2), 40, 8, faultB)
	if err := s.BuildSignature(ctx, "fault-a", sigWinA); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildSignature(ctx, "fault-b", sigWinB); err != nil {
		t.Fatal(err)
	}
	ab := synthTrace(rng.Fork(3), 40, 8, faultA)

	// Legacy pipeline, inline. The old clean path preferred the batch
	// scorer (DefaultConfig wires MICBatch) and matched with nil mask.
	set, err := s.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	legacyMatrix := func(rows [][]float64) *invariant.Matrix {
		scorer, err := MICBatch(mic.DefaultConfig())(rows)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := invariant.ComputeMatrixScored(len(rows), scorer)
		if err != nil {
			t.Fatal(err)
		}
		return mat
	}
	var legacyDB signature.DB
	for _, sw := range []struct {
		problem string
		win     *metrics.Trace
	}{{"fault-a", sigWinA}, {"fault-b", sigWinB}} {
		raw, err := set.Violations(legacyMatrix(sw.win.Rows), cfg.Epsilon)
		if err != nil {
			t.Fatal(err)
		}
		legacyDB.Add(signature.Entry{Tuple: raw, Problem: sw.problem, IP: ctx.IP, Workload: ctx.Workload})
	}
	rawAb, err := set.Violations(legacyMatrix(ab.Rows), cfg.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	legacyTuple := signature.Tuple(rawAb)
	matches, err := legacyDB.Match(legacyTuple, ctx.IP, ctx.Workload, cfg.Similarity, 0)
	if err != nil {
		t.Fatal(err)
	}
	legacyCauses := signature.BestProblem(matches)
	if cfg.TopK > 0 && len(legacyCauses) > cfg.TopK {
		legacyCauses = legacyCauses[:cfg.TopK]
	}

	diag, err := s.Diagnose(ctx, ab)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Known != nil || diag.Unknown != nil {
		t.Errorf("clean window: Known=%v Unknown=%v, want both nil", diag.Known, diag.Unknown)
	}
	if diag.Coverage != 1 {
		t.Errorf("clean window Coverage = %v, want exactly 1", diag.Coverage)
	}
	if diag.Tuple.String() != legacyTuple.String() {
		t.Errorf("tuple %s differs from legacy %s", diag.Tuple, legacyTuple)
	}
	if len(diag.Causes) != len(legacyCauses) {
		t.Fatalf("got %d causes, legacy %d", len(diag.Causes), len(legacyCauses))
	}
	for i, c := range diag.Causes {
		if c.Problem != legacyCauses[i].Problem || c.Score != legacyCauses[i].Score {
			t.Errorf("cause %d: got %s %v, legacy %s %v",
				i, c.Problem, c.Score, legacyCauses[i].Problem, legacyCauses[i].Score)
		}
	}
	if diag.RootCause() != "fault-a" {
		t.Errorf("root cause = %q, want fault-a", diag.RootCause())
	}
	if diag.Confidence != legacyCauses[0].Score {
		t.Errorf("Confidence = %v, want top legacy score %v", diag.Confidence, legacyCauses[0].Score)
	}
}

// TestConcurrentMultiContextPipeline drives N contexts from N goroutines
// simultaneously — each trains, builds a signature, persists into a shared
// store and diagnoses — exercising the striped registry, the per-profile
// locks and concurrent SaveTo under the race detector. A fresh system must
// then restore every profile from the shared store.
func TestConcurrentMultiContextPipeline(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	s := New(DefaultConfig())
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := Context{Workload: "wordcount", IP: fmt.Sprintf("10.0.0.%d", g+2)}
			rng := stats.NewRNG(900 + int64(g))
			var runs []*metrics.Trace
			var cpis [][]float64
			for i := 0; i < 3; i++ {
				tr := synthTrace(rng.Fork(int64(i)), 60, 8, nil)
				runs = append(runs, tr)
				cpis = append(cpis, tr.CPI)
			}
			if err := s.TrainPerformanceModel(ctx, cpis); err != nil {
				errs[g] = err
				return
			}
			if err := s.TrainInvariants(ctx, runs); err != nil {
				errs[g] = err
				return
			}
			ab := synthTrace(rng.Fork(10), 60, 8, map[int]bool{1: true, 2: true})
			if err := s.BuildSignature(ctx, "fault-x", ab); err != nil {
				errs[g] = err
				return
			}
			if err := s.Profile(ctx).SaveTo(dir); err != nil {
				errs[g] = err
				return
			}
			diag, err := s.Diagnose(ctx, synthTrace(rng.Fork(11), 60, 8, map[int]bool{1: true, 2: true}))
			if err != nil {
				errs[g] = err
				return
			}
			if diag.RootCause() != "fault-x" {
				errs[g] = fmt.Errorf("context %v diagnosed %q, want fault-x", ctx, diag.RootCause())
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := len(s.Profiles()); got != n {
		t.Errorf("registry holds %d profiles, want %d", got, n)
	}
	if got := s.SignatureCount(); got != n {
		t.Errorf("signature count %d, want %d", got, n)
	}

	restored := New(DefaultConfig())
	rep, err := restored.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial() {
		t.Fatalf("restore was partial: %s", rep)
	}
	if rep.Models != n || rep.Invariants != n || rep.Signatures != n {
		t.Errorf("restored %d/%d/%d artefacts, want %d each", rep.Models, rep.Invariants, rep.Signatures, n)
	}
	for g := 0; g < n; g++ {
		ctx := Context{Workload: "wordcount", IP: fmt.Sprintf("10.0.0.%d", g+2)}
		if _, err := restored.Detector(ctx); err != nil {
			t.Errorf("restored detector %v: %v", ctx, err)
		}
	}
}

// TestTrainingPoolDedupe pins the satellite fix: retraining over the same
// traces must not grow the pools or the cache footprint.
func TestTrainingPoolDedupe(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := New(Config{UseContext: true})
	rng := stats.NewRNG(820)
	var runs []*metrics.Trace
	var cpis [][]float64
	for i := 0; i < 3; i++ {
		tr := synthTrace(rng.Fork(int64(i)), 60, 8, nil)
		runs = append(runs, tr)
		cpis = append(cpis, tr.CPI)
	}
	for round := 0; round < 3; round++ {
		if err := s.TrainPerformanceModel(ctx, cpis); err != nil {
			t.Fatal(err)
		}
		if err := s.TrainInvariants(ctx, runs); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Profile(ctx).Stats()
	if st.CPIRuns != 3 {
		t.Errorf("CPI pool holds %d runs after 3 identical trainings, want 3", st.CPIRuns)
	}
	if st.Windows != 3 {
		t.Errorf("window pool holds %d windows after 3 identical trainings, want 3", st.Windows)
	}
}

// TestTrainingPoolCap pins the configurable bound: the pool keeps the
// newest PoolCap items, evicting the oldest.
func TestTrainingPoolCap(t *testing.T) {
	p := newTrainingPool[int](2)
	if !p.add(1, 10) || !p.add(2, 20) {
		t.Fatal("fresh items must be accepted")
	}
	if p.add(1, 10) {
		t.Error("duplicate fingerprint must be rejected")
	}
	if !p.add(3, 30) {
		t.Fatal("third item must be accepted")
	}
	if got := p.snapshot(); len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Errorf("pool = %v, want [20 30] (oldest evicted)", got)
	}
	// The evicted fingerprint is forgotten, so the item can return.
	if !p.add(1, 10) {
		t.Error("re-adding an evicted item must succeed")
	}

	// End-to-end: a capped system keeps only the newest windows.
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := New(Config{UseContext: true, PoolCap: 2})
	rng := stats.NewRNG(830)
	for i := 0; i < 4; i++ {
		if err := s.TrainInvariants(ctx, []*metrics.Trace{synthTrace(rng.Fork(int64(i)), 60, 8, nil)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Profile(ctx).Stats(); st.Windows != 2 {
		t.Errorf("capped window pool holds %d, want 2", st.Windows)
	}

	// Negative PoolCap disables the bound.
	unbounded := New(Config{UseContext: true, PoolCap: -1})
	for i := 0; i < 4; i++ {
		if err := unbounded.TrainInvariants(ctx, []*metrics.Trace{synthTrace(rng.Fork(100 + int64(i)), 60, 8, nil)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := unbounded.Profile(ctx).Stats(); st.Windows != 4 {
		t.Errorf("unbounded window pool holds %d, want 4", st.Windows)
	}
}

// TestSignatureSnapshotIsolated pins the SignatureDB data-race fix: the
// snapshot is a deep copy, safe to read while writers keep adding, and
// mutating it cannot touch the live databases.
func TestSignatureSnapshotIsolated(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 840)
	rng := stats.NewRNG(841)
	if err := s.BuildSignature(ctx, "fault-a", synthTrace(rng.Fork(1), 40, 8, map[int]bool{0: true})); err != nil {
		t.Fatal(err)
	}
	snap := s.SignatureSnapshot()
	if snap.Len() != 1 {
		t.Fatalf("snapshot holds %d entries, want 1", snap.Len())
	}
	snap.Add(signature.Entry{Tuple: make(signature.Tuple, 3), Problem: "bogus"})
	if s.SignatureCount() != 1 {
		t.Error("mutating the snapshot leaked into the live database")
	}

	// Concurrent writers vs snapshot readers: must be race-clean.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			win := synthTrace(stats.NewRNG(850+int64(g)), 40, 8, map[int]bool{1: true})
			for i := 0; i < 5; i++ {
				if err := s.BuildSignature(ctx, fmt.Sprintf("p%d", g), win); err != nil {
					t.Error(err)
					return
				}
				_ = s.SignatureSnapshot().Len()
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine labelled the same (problem, window) 5 times; storage is
	// idempotent by (context, fingerprint), so exactly one entry per distinct
	// problem survives alongside the seed entry.
	if got := s.SignatureCount(); got != 1+4 {
		t.Errorf("signature count %d, want %d", got, 1+4)
	}
}

// TestProfileRegistry pins registry semantics: stable identity per context,
// the no-context collapse onto one global profile, and sorted enumeration.
func TestProfileRegistry(t *testing.T) {
	s := New(Config{UseContext: true})
	a := Context{Workload: "sort", IP: "10.0.0.3"}
	b := Context{Workload: "grep", IP: "10.0.0.2"}
	if s.Profile(a) != s.Profile(a) {
		t.Error("same context must yield the same profile")
	}
	if s.Profile(a) == s.Profile(b) {
		t.Error("distinct contexts must yield distinct profiles")
	}
	if _, ok := s.lookup(Context{Workload: "never", IP: "trained"}); ok {
		t.Error("lookup must not materialise profiles")
	}
	ps := s.Profiles()
	if len(ps) != 2 || ps[0].Context() != b || ps[1].Context() != a {
		t.Errorf("Profiles() = %v, want sorted [%v %v]", ps, b, a)
	}

	global := New(Config{UseContext: false})
	if global.Profile(a) != global.Profile(b) {
		t.Error("no-context system must collapse every context onto one profile")
	}
	if got := global.Profile(a).Context(); got != (Context{}) {
		t.Errorf("global profile key = %v, want zero Context", got)
	}
}

// TestDegradedPathUsesBatchAndCache pins the tentpole plumbing the old
// masked path lacked: a degraded window's analysis is cached (repeat
// diagnosis hits) and keyed by the validity mask, so a masked window and
// its unmasked twin never share an entry.
func TestDegradedPathUsesBatchAndCache(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 860)
	rng := stats.NewRNG(861)
	ab := synthTrace(rng.Fork(1), 40, 8, map[int]bool{0: true})
	masked := synthTrace(rng.Fork(1), 40, 8, map[int]bool{0: true})
	// Rebuild the same window with a validity mask knocking out metric 3.
	maskedCopy := metrics.NewTrace("10.0.0.2", "wordcount")
	for tick := 0; tick < 40; tick++ {
		row := make([]float64, len(masked.Rows))
		valid := make([]bool, len(masked.Rows))
		for m := range masked.Rows {
			row[m] = masked.Rows[m][tick]
			valid[m] = m != 3 || tick >= 20
		}
		if err := maskedCopy.AddMasked(row, valid, masked.CPI[tick], true); err != nil {
			t.Fatal(err)
		}
	}
	before := s.AssocCacheStats()
	if _, err := s.Diagnose(ctx, maskedCopy); err != nil {
		t.Fatal(err)
	}
	st := s.AssocCacheStats()
	if st.Misses != before.Misses+1 {
		t.Fatalf("degraded window must be cached as a miss: %+v -> %+v", before, st)
	}
	if _, err := s.Diagnose(ctx, maskedCopy); err != nil {
		t.Fatal(err)
	}
	if got := s.AssocCacheStats(); got.Hits != st.Hits+1 {
		t.Errorf("repeat degraded window must hit: %+v -> %+v", st, got)
	}
	// The unmasked twin has identical rows but no mask: distinct entry.
	if _, err := s.Diagnose(ctx, ab); err != nil {
		t.Fatal(err)
	}
	if got := s.AssocCacheStats(); got.Misses != st.Misses+1 {
		t.Errorf("unmasked twin must not share the masked entry: %+v -> %+v", st, got)
	}
}

package core

import (
	"math"
	"reflect"
	"testing"

	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/stats"
)

// maskTicks rebuilds a trace with a random fraction of samples invalidated
// (stored as NaN with the validity flag cleared), plus one full-outage
// metric — the degraded-telemetry shapes the sparse path must reproduce.
func maskTicks(rng *stats.RNG, tr *metrics.Trace, drop float64, outage int) *metrics.Trace {
	out := metrics.NewTrace(tr.NodeIP, tr.Context)
	for t := 0; t < tr.Len(); t++ {
		sample := make([]float64, metrics.Count)
		valid := make([]bool, metrics.Count)
		for m := 0; m < metrics.Count; m++ {
			sample[m] = tr.Rows[m][t]
			valid[m] = rng.Float64() >= drop && m != outage
			if !valid[m] {
				sample[m] = math.NaN()
			}
		}
		if err := out.AddMasked(sample, valid, tr.CPI[t], true); err != nil {
			panic(err)
		}
	}
	return out
}

// TestSparseMatchesExactProperty: over random clean, faulted and degraded
// windows, the default sparse tiered path must produce byte-identical
// violation reports and diagnoses (tuple, known flags, coverage, causes,
// confidence) to the ExactDiagnosis dense reference pipeline.
func TestSparseMatchesExactProperty(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	exactCfg := DefaultConfig()
	exactCfg.ExactDiagnosis = true
	sp := trainSystem(t, DefaultConfig(), ctx, 900)
	ex := trainSystem(t, exactCfg, ctx, 900)
	spSet, err := sp.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	exSet, err := ex.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spSet.SortedPairs(), exSet.SortedPairs()) {
		t.Fatal("identical training produced different invariant sets")
	}

	rng := stats.NewRNG(901)
	// Seed identical signatures through each system's own pipeline: the
	// sparse system's stored tuples must already match the dense system's.
	for i, prob := range []string{"cpu-hog", "mem-hog", "disk-hog"} {
		abn := synthTrace(rng.Fork(int64(50+i)), 30, 8, map[int]bool{i: true, i + 1: true})
		if err := sp.BuildSignature(ctx, prob, abn); err != nil {
			t.Fatal(err)
		}
		if err := ex.BuildSignature(ctx, prob, abn); err != nil {
			t.Fatal(err)
		}
	}

	for rep := 0; rep < 24; rep++ {
		sub := rng.Fork(int64(rep))
		decouple := map[int]bool{}
		if rep%3 != 0 {
			decouple[sub.Intn(8)] = true
			decouple[sub.Intn(8)] = true
		}
		tr := synthTrace(sub, 30, 8, decouple)
		switch rep % 4 {
		case 1:
			tr = maskTicks(sub, tr, 0.1, rep%metrics.Count)
		case 2:
			// A NaN slipping past a nil mask must degrade both paths alike.
			tr.Rows[rep%metrics.Count][5] = math.NaN()
		}
		vSp, errSp := sp.Violations(ctx, tr)
		vEx, errEx := ex.Violations(ctx, tr)
		if (errSp == nil) != (errEx == nil) {
			t.Fatalf("rep %d: sparse err %v, exact err %v", rep, errSp, errEx)
		}
		if errSp != nil {
			continue
		}
		if !reflect.DeepEqual(vSp, vEx) {
			t.Errorf("rep %d: sparse report %+v != exact %+v", rep, vSp, vEx)
		}
		dSp, err := sp.Diagnose(ctx, tr)
		if err != nil {
			t.Fatal(err)
		}
		dEx, err := ex.Diagnose(ctx, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dSp, dEx) {
			t.Errorf("rep %d: sparse diagnosis %+v != exact %+v", rep, dSp, dEx)
		}
	}

	if st := sp.SparseStats(); st.Screened == 0 {
		t.Error("prescreen never certified a pair across the property windows")
	}
	if st := ex.SparseStats(); st != (SparseStats{}) {
		t.Errorf("exact pipeline advanced sparse counters: %+v", st)
	}
	if entries, _ := sp.SignatureScanStats(); entries == 0 {
		t.Error("signature scan counters never advanced")
	}
}

// TestSparseReportCacheReuse: diagnosing the same window twice must return
// the memoised report, and retraining (a new invariant set pointer) must
// invalidate it even though the fingerprint is unchanged.
func TestSparseReportCacheReuse(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 910)
	tr := synthTrace(stats.NewRNG(911), 30, 8, map[int]bool{2: true})
	before := s.AssocCacheStats()
	v1, err := s.Violations(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Violations(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("second diagnosis of an identical window did not return the cached report")
	}
	after := s.AssocCacheStats()
	if after.Hits != before.Hits+1 {
		t.Errorf("cache hits %d -> %d, want one new hit", before.Hits, after.Hits)
	}

	// Retrain on the same windows: the pool dedupes, so the selected pairs
	// are unchanged, but the set pointer is fresh and the cached report must
	// not be served for it.
	prof := s.Profile(ctx)
	if err := prof.TrainInvariants(nil); err != nil {
		t.Fatal(err)
	}
	v3, err := s.Violations(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Error("report cached under the old invariant set survived retraining")
	}
	if !reflect.DeepEqual(v3, v1) {
		t.Errorf("recomputed report %+v differs from original %+v", v3, v1)
	}
}

// TestDiagnoseHintedFingerprint: a caller-supplied fingerprint must key the
// report cache (skipping both the content hash and the scorer on a hit), and
// a changed fingerprint must yield the same diagnosis the unhinted path
// computes for the new window.
func TestDiagnoseHintedFingerprint(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, DefaultConfig(), ctx, 920)
	rng := stats.NewRNG(921)
	tr1 := synthTrace(rng.Fork(1), 30, 8, map[int]bool{1: true})
	tr2 := synthTrace(rng.Fork(2), 30, 8, nil)

	d1, err := s.DiagnoseHinted(ctx, tr1, &WindowHint{FP: 42, HasFP: true})
	if err != nil {
		t.Fatal(err)
	}
	scorerCalled := false
	d2, err := s.DiagnoseHinted(ctx, tr1, &WindowHint{FP: 42, HasFP: true, Scorer: func() invariant.PairScorer {
		scorerCalled = true
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if scorerCalled {
		t.Error("report-cache hit still built the hint scorer")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("hinted rediagnosis %+v != original %+v", d2, d1)
	}

	d3, err := s.DiagnoseHinted(ctx, tr2, &WindowHint{FP: 43, HasFP: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Diagnose(ctx, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d3, want) {
		t.Errorf("hinted diagnosis %+v != unhinted %+v", d3, want)
	}
}

package core

import (
	"math"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	good := []struct {
		name string
		cfg  Config
	}{
		{"defaults", DefaultConfig()},
		{"zero (defaults at New)", Config{}},
		{"unbounded pool sentinel", mut(func(c *Config) { c.PoolCap = -1 })},
		{"uncapped cache sentinel", mut(func(c *Config) { c.AssocCacheSize = -1 })},
		{"pool at clamp", mut(func(c *Config) { c.PoolCap = maxPoolCap })},
	}
	for _, tc := range good {
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
	}

	bad := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"NaN epsilon", mut(func(c *Config) { c.Epsilon = math.NaN() }), "Epsilon"},
		{"negative epsilon", mut(func(c *Config) { c.Epsilon = -0.1 }), "Epsilon"},
		{"epsilon above one", mut(func(c *Config) { c.Epsilon = 1.5 }), "Epsilon"},
		{"Inf tau", mut(func(c *Config) { c.Tau = math.Inf(1) }), "Tau"},
		{"negative beta", mut(func(c *Config) { c.Detect.Beta = -2 }), "Beta"},
		{"NaN beta", mut(func(c *Config) { c.Detect.Beta = math.NaN() }), "Beta"},
		{"negative consecutive", mut(func(c *Config) { c.Detect.Consecutive = -1 }), "Consecutive"},
		{"absurd consecutive", mut(func(c *Config) { c.Detect.Consecutive = maxConsecutive + 1 }), "Consecutive"},
		{"negative topk", mut(func(c *Config) { c.TopK = -1 }), "TopK"},
		{"NaN sig min score", mut(func(c *Config) { c.SigMinScore = math.NaN() }), "SigMinScore"},
		{"sig min score above one", mut(func(c *Config) { c.SigMinScore = 1.5 }), "SigMinScore"},
		{"pool over clamp", mut(func(c *Config) { c.PoolCap = maxPoolCap + 1 }), "PoolCap"},
		{"cache over clamp", mut(func(c *Config) { c.AssocCacheSize = maxAssocCacheSize + 1 }), "AssocCacheSize"},
		{"unknown rule", mut(func(c *Config) { c.Detect.Rule = 97 }), "rule"},
		{"unknown similarity", mut(func(c *Config) { c.Similarity = 97 }), "similarity"},
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestNewPanicsOnInvalidConfig: no System may exist around a config that
// would corrupt every later call.
func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a NaN Epsilon without panicking")
		}
	}()
	cfg := DefaultConfig()
	cfg.Epsilon = math.NaN()
	New(cfg)
}

// TestNewDefaultsZeroConfig: a zero config still defaults to the paper
// parameters (zero means "default", not "off").
func TestNewDefaultsZeroConfig(t *testing.T) {
	s := New(Config{})
	got, want := s.Config(), DefaultConfig()
	if got.Epsilon != want.Epsilon || got.Tau != want.Tau ||
		got.Detect.Beta != want.Detect.Beta || got.Detect.Consecutive != want.Detect.Consecutive {
		t.Errorf("zero config defaulted to %+v, want paper defaults %+v", got, want)
	}
}

// TestSigMinScorePropagatesToProfiles: the SigMinScore knob must land on
// each profile's signature database, where > 0 activates the indexed
// retrieval path — a knob that validates but never reaches the DB would
// silently leave every diagnosis on the scan fallback.
func TestSigMinScorePropagatesToProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SigMinScore = 0.4
	sys := New(cfg)
	p := sys.Profile(Context{Workload: "wc", IP: "10.0.0.1"})
	if got := p.sigs.MinScore; got != 0.4 {
		t.Fatalf("profile signature MinScore = %v, want 0.4", got)
	}
	if got := New(DefaultConfig()).Profile(Context{Workload: "wc", IP: "n"}).sigs.MinScore; got != 0 {
		t.Fatalf("default profile signature MinScore = %v, want 0 (paper behaviour: rank all)", got)
	}
}

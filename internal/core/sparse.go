package core

import (
	"fmt"

	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/signature"
)

// This file is the sparse diagnosis hot path: Violations/Diagnose cost
// proportional to the trained invariant edge set instead of the full M×M
// matrix. Per window it runs three tiers — a memoised report lookup (the
// window fingerprint, salted into the profile's assocCache), the prescreen
// lower bound over each trained pair (invariant.Prescreener), and the exact
// association only for the pairs the screen cannot certify. Verdicts are
// identical to the dense pipeline's (the prescreen certificate is
// one-sided); Config.ExactDiagnosis forces the dense reference path.

// WindowHint carries serving-layer reuse state into one diagnosis call.
// Both fields are optional; a nil hint (or zero value) makes DiagnoseHinted
// identical to Diagnose.
type WindowHint struct {
	// FP, with HasFP set, replaces the content fingerprint for the report
	// cache: a caller that knows when its window changed (e.g. a stream
	// hashing its identity and window generation) saves the O(m·n) hash of
	// the samples. The caller must guarantee FP changes whenever the window
	// content does, and never collides with another window of the same
	// profile.
	FP    uint64
	HasFP bool
	// Scorer, when non-nil, lazily supplies the pair scorer for the window —
	// typically built from incrementally maintained per-metric state
	// (mic.Slider) so the per-window sort/partition work is already paid.
	// It is only invoked on a report-cache miss. The scorer must compute
	// the same association measure as the profile's configuration over
	// exactly the window being diagnosed; returning nil falls back to the
	// configured batch or per-pair path.
	Scorer func() invariant.PairScorer
}

// SparseStats aggregates sparse-path edge telemetry: how trained pairs were
// resolved across all diagnoses (see invariant.EdgeStats for the tiers).
// Report-cache hits evaluate no pairs and advance nothing.
type SparseStats struct {
	Screened int64
	Exact    int64
	Skipped  int64
}

// funcScorer adapts the per-pair association function to the PairScorer
// shape for the sparse edge loop when no batch form exists.
type funcScorer struct {
	rows  [][]float64
	assoc invariant.AssociationFunc
}

func (f funcScorer) Score(i, j int) float64 { return f.assoc(f.rows[i], f.rows[j]) }

// checkWindow validates the window shape against the invariant set before
// the sparse edge loop (the dense path's equivalents live inside
// ComputeMatrix and ViolationsMasked).
func checkWindow(rows [][]float64, m int) error {
	if len(rows) != m {
		return fmt.Errorf("core: %d metric rows, invariant set dimension %d", len(rows), m)
	}
	if m == 0 {
		return fmt.Errorf("core: empty window")
	}
	n := len(rows[0])
	for i, r := range rows {
		if len(r) != n {
			return fmt.Errorf("core: metric %d has %d samples, want %d", i, len(r), n)
		}
	}
	return nil
}

// violationsSparse computes the violation report over the trained edges
// only. The returned report may be shared with the profile's cache and
// other callers — strictly read-only.
func (p *Profile) violationsSparse(set *invariant.Set, tr *metrics.Trace, hint *WindowHint) (*ViolationReport, error) {
	var fp uint64
	haveFP := false
	// The cache key mixes the lifecycle epoch: a quarantine or promotion
	// bumps it, so reports cached before the verdict surface changed can no
	// longer be served. The salt is captured once — if this very window
	// changes the epoch, its report is cached under the old key and simply
	// never hit again, which is safe in both directions. Cache hits skip
	// health observation entirely: an identical window re-diagnosed adds no
	// information to the drift series.
	salt := reportSalt ^ p.lifecycleSalt()
	if p.cache != nil {
		if hint != nil && hint.HasFP {
			fp = hint.FP
		} else {
			fp = fingerprintWindow(tr.Rows, tr.Valid)
		}
		haveFP = true
		if e, ok := p.cache.get(fp ^ salt); ok && e.rep != nil && e.repSet == set {
			return e.rep, nil
		}
	}
	if err := checkWindow(tr.Rows, set.M); err != nil {
		return nil, err
	}
	cfg := &p.sys.cfg
	var scorer invariant.PairScorer
	if hint != nil && hint.Scorer != nil {
		scorer = hint.Scorer()
	}
	if scorer == nil && cfg.BatchAssoc != nil {
		// Preparation errors (too few samples, non-finite values) drop the
		// batch tier, exactly as in the dense compute path.
		if sc, err := cfg.BatchAssoc(tr.Rows); err == nil {
			scorer = sc
		}
	}
	degraded := traceDegraded(tr)
	var (
		raw, known []bool
		st         invariant.EdgeStats
		err        error
	)
	if degraded {
		raw, known, st, err = set.ComputeEdgesMasked(tr.Rows, tr.Valid, cfg.Assoc, scorer, 0, cfg.Epsilon)
	} else {
		if scorer == nil {
			scorer = funcScorer{rows: tr.Rows, assoc: cfg.Assoc}
		}
		raw, st, err = set.ComputeEdgesScored(scorer, cfg.Epsilon)
	}
	if err != nil {
		return nil, err
	}
	if p.lc != nil {
		// Drift lifecycle: health over the raw verdicts, shadow
		// re-estimation from exact scores, quarantine masking. Shadow
		// candidates judge themselves on clean windows only — on the
		// degraded path no whole-window scorer is valid, so those windows
		// observe health without re-estimating.
		var score func(k int) (float64, bool)
		if !degraded && scorer != nil {
			pairs := set.SortedPairs()
			sc := scorer
			score = func(k int) (float64, bool) {
				pr := pairs[k]
				return sc.Score(pr.I, pr.J), true
			}
		}
		raw, known = p.lifecyclePost(set, raw, known, score)
	}
	rep := &ViolationReport{Tuple: signature.Tuple(raw), Coverage: 1, set: set}
	if known != nil {
		rep.Known = known
		checkable := 0
		for _, ok := range known {
			if ok {
				checkable++
			}
		}
		if len(known) > 0 {
			rep.Coverage = float64(checkable) / float64(len(known))
		}
	}
	for k, pr := range set.SortedPairs() {
		if raw[k] && (known == nil || known[k]) {
			rep.Violated = append(rep.Violated, pr)
		}
	}
	p.sparseScreened.Add(int64(st.Screened))
	p.sparseExact.Add(int64(st.Exact))
	p.sparseSkipped.Add(int64(st.Skipped))
	if haveFP {
		p.cache.put(fp^salt, cacheEntry{rep: rep, repSet: set})
	}
	return rep, nil
}

// SparseStats returns the profile's cumulative sparse-path edge counters.
func (p *Profile) SparseStats() SparseStats {
	return SparseStats{
		Screened: p.sparseScreened.Load(),
		Exact:    p.sparseExact.Load(),
		Skipped:  p.sparseSkipped.Load(),
	}
}

package core

import (
	"testing"

	"invarnetx/internal/arx"
	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
	"invarnetx/internal/stats"
)

func TestFingerprintRows(t *testing.T) {
	a := [][]float64{{1, 2, 3}, {4, 5, 6}}
	b := [][]float64{{1, 2, 3}, {4, 5, 6}}
	if fingerprintRows(a) != fingerprintRows(b) {
		t.Error("identical windows must fingerprint identically")
	}
	c := [][]float64{{1, 2, 3}, {4, 5, 6.0000001}}
	if fingerprintRows(a) == fingerprintRows(c) {
		t.Error("a changed sample must change the fingerprint")
	}
	// Shape must matter, not just the flattened content.
	d := [][]float64{{1, 2}, {3, 4, 5, 6}}
	if fingerprintRows(a) == fingerprintRows(d) {
		t.Error("a reshaped window must change the fingerprint")
	}
}

func TestAssocCacheHitsOnRetrain(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := New(Config{UseContext: true})
	rng := stats.NewRNG(700)
	var runs []*metrics.Trace
	for i := 0; i < 4; i++ {
		runs = append(runs, synthTrace(rng.Fork(int64(i)), 60, 8, nil))
	}
	if err := s.TrainInvariants(ctx, runs[:2]); err != nil {
		t.Fatal(err)
	}
	st := s.AssocCacheStats()
	if st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after first training: %+v, want 0 hits / 2 misses / 2 entries", st)
	}
	// Adding runs recomputes the whole pool; the first two windows must now
	// come from the cache.
	if err := s.TrainInvariants(ctx, runs[2:]); err != nil {
		t.Fatal(err)
	}
	st = s.AssocCacheStats()
	if st.Hits != 2 || st.Misses != 4 || st.Entries != 4 {
		t.Fatalf("after pooled retraining: %+v, want 2 hits / 4 misses / 4 entries", st)
	}
}

func TestAssocCacheInvalidatesOnWindowChange(t *testing.T) {
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	s := trainSystem(t, Config{UseContext: true}, ctx, 701)
	before := s.AssocCacheStats()
	ab := synthTrace(stats.NewRNG(702), 40, 8, map[int]bool{0: true})
	if _, err := s.Violations(ctx, ab); err != nil {
		t.Fatal(err)
	}
	st := s.AssocCacheStats()
	if st.Misses != before.Misses+1 {
		t.Fatalf("fresh abnormal window should miss: before %+v, after %+v", before, st)
	}
	// The same window again is a hit...
	if _, err := s.Violations(ctx, ab); err != nil {
		t.Fatal(err)
	}
	if got := s.AssocCacheStats(); got.Hits != st.Hits+1 {
		t.Fatalf("repeat window should hit: %+v -> %+v", st, got)
	}
	// ...until any sample changes.
	ab.Rows[3][7] += 0.5
	if _, err := s.Violations(ctx, ab); err != nil {
		t.Fatal(err)
	}
	if got := s.AssocCacheStats(); got.Misses != st.Misses+1 {
		t.Fatalf("mutated window should miss: %+v -> %+v", st, got)
	}
}

func TestAssocCacheKeysByContext(t *testing.T) {
	s := New(Config{UseContext: true})
	ctxA := Context{Workload: "wordcount", IP: "10.0.0.2"}
	ctxB := Context{Workload: "sort", IP: "10.0.0.3"}
	tr := synthTrace(stats.NewRNG(703), 60, 8, nil)
	runs := []*metrics.Trace{tr, synthTrace(stats.NewRNG(704), 60, 8, nil)}
	if err := s.TrainInvariants(ctxA, runs); err != nil {
		t.Fatal(err)
	}
	// Identical windows under a different context must not share entries.
	if err := s.TrainInvariants(ctxB, runs); err != nil {
		t.Fatal(err)
	}
	st := s.AssocCacheStats()
	if st.Hits != 0 || st.Entries != 4 {
		t.Fatalf("contexts must not share cache entries: %+v", st)
	}
}

func TestAssocCacheDisabledAndBounded(t *testing.T) {
	off := New(Config{AssocCacheSize: -1})
	ctx := Context{Workload: "w", IP: "ip"}
	if off.Profile(ctx).cache != nil {
		t.Error("negative AssocCacheSize should disable the cache")
	}
	if err := off.TrainInvariants(ctx, []*metrics.Trace{
		synthTrace(stats.NewRNG(705), 60, 8, nil),
		synthTrace(stats.NewRNG(706), 60, 8, nil),
	}); err != nil {
		t.Fatal(err)
	}
	if st := off.AssocCacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache stats = %+v, want zero", st)
	}

	small := newAssocCache(2)
	for i := 0; i < 5; i++ {
		small.put(uint64(i), cacheEntry{mat: invariant.NewMatrix(2)})
	}
	if st := small.stats(); st.Entries != 2 {
		t.Errorf("bounded cache holds %d entries, want 2", st.Entries)
	}
	// Oldest evicted first: keys 0..2 gone, 3 and 4 present.
	if _, ok := small.get(0); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := small.get(4); !ok {
		t.Error("newest entry should survive eviction")
	}
}

func TestBatchAssocAutoWiring(t *testing.T) {
	if s := New(Config{}); s.cfg.BatchAssoc == nil {
		t.Error("stock mic.MIC config should auto-wire the batch path")
	}
	if s := New(Config{Assoc: mic.MIC}); s.cfg.BatchAssoc == nil {
		t.Error("explicit mic.MIC should auto-wire the batch path")
	}
	if s := New(Config{Assoc: arx.Association}); s.cfg.BatchAssoc != nil {
		t.Error("a non-MIC measure must not get the MIC batch scorer")
	}
	wrapped := func(x, y []float64) float64 { return mic.MIC(x, y) }
	if s := New(Config{Assoc: wrapped}); s.cfg.BatchAssoc != nil {
		t.Error("a wrapped MIC is not the stock function; batch must stay off")
	}
}

func TestBatchPathMatchesGeneric(t *testing.T) {
	// The batch-scored pipeline must produce the same invariants and tuples
	// as the per-pair Assoc pipeline.
	ctx := Context{Workload: "wordcount", IP: "10.0.0.2"}
	batched := trainSystem(t, Config{UseContext: true}, ctx, 707)
	plain := trainSystem(t, Config{UseContext: true, BatchAssoc: nil, AssocCacheSize: -1, Assoc: func(x, y []float64) float64 { return mic.MIC(x, y) }}, ctx, 707)
	sb, err := batched.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := plain.Invariants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Len() != sp.Len() {
		t.Fatalf("batched selected %d invariants, per-pair %d", sb.Len(), sp.Len())
	}
	for _, p := range sb.SortedPairs() {
		if sb.Base[p] != sp.Base[p] {
			t.Errorf("baseline for %v: batched %v, per-pair %v", p, sb.Base[p], sp.Base[p])
		}
	}
}

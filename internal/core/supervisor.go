package core

import (
	"fmt"
	"log"
	"sync"
	"time"
)

// SupervisorConfig tunes panic recovery for supervised monitor jobs.
type SupervisorConfig struct {
	// MaxRestarts bounds how many times a panicking job is restarted
	// before the supervisor gives up on it (default 5).
	MaxRestarts int
	// BaseBackoff is the delay before the first restart (default 100 ms);
	// each further restart doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the restart delay (default 5 s).
	MaxBackoff time.Duration
	// Logf receives supervision events (panics, restarts, give-ups);
	// log.Printf by default.
	Logf func(format string, args ...any)
	// Sleep waits between restarts; time.Sleep by default. Tests inject a
	// recording stub so backoff is observable without wall-clock waits.
	Sleep func(time.Duration)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// JobStatus is a snapshot of one supervised job.
type JobStatus struct {
	Name string
	// Running is true while the job goroutine is alive (including backoff
	// waits between restarts).
	Running bool
	// Restarts counts panic recoveries so far.
	Restarts int
	// LastPanic holds the most recent recovered panic value, rendered.
	LastPanic string
	// GaveUp is set when the job exceeded MaxRestarts.
	GaveUp bool
	// Err is the error the job's final run returned, if any.
	Err error
}

// Supervisor keeps online monitor jobs alive: each job runs in its own
// goroutine, a panic is recovered and logged instead of killing the
// process, and the job is restarted with exponential backoff. A job that
// keeps panicking past MaxRestarts is abandoned (and reported), so one
// poisoned CPI stream cannot wedge the supervisor in a hot crash loop.
type Supervisor struct {
	cfg SupervisorConfig

	mu   sync.Mutex
	jobs map[string]*supJob
	stop chan struct{}
	done bool
	wg   sync.WaitGroup
}

type supJob struct {
	status JobStatus
}

// NewSupervisor builds a supervisor; zero-valued cfg fields are defaulted.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	return &Supervisor{
		cfg:  cfg.withDefaults(),
		jobs: make(map[string]*supJob),
		stop: make(chan struct{}),
	}
}

// Supervise starts run under supervision as name. run receives a stop
// channel that closes when the supervisor shuts down; a clean return (or an
// error return, which is recorded) ends the job, while a panic restarts it
// with backoff. Each restart calls run afresh, so per-run state (like a
// detect.Monitor poisoned by the panic) is rebuilt.
func (s *Supervisor) Supervise(name string, run func(stop <-chan struct{}) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("core: supervisor is stopped")
	}
	if _, dup := s.jobs[name]; dup {
		return fmt.Errorf("core: job %q is already supervised", name)
	}
	j := &supJob{status: JobStatus{Name: name, Running: true}}
	s.jobs[name] = j
	s.wg.Add(1)
	go s.loop(name, j, run)
	return nil
}

// loop is the per-job supervision goroutine.
func (s *Supervisor) loop(name string, j *supJob, run func(stop <-chan struct{}) error) {
	defer s.wg.Done()
	for {
		err, panicked := s.runOnce(name, j, run)
		if !panicked {
			s.mu.Lock()
			j.status.Running = false
			j.status.Err = err
			s.mu.Unlock()
			return
		}
		select {
		case <-s.stop:
			s.mu.Lock()
			j.status.Running = false
			s.mu.Unlock()
			return
		default:
		}
		s.mu.Lock()
		restarts := j.status.Restarts
		if restarts >= s.cfg.MaxRestarts {
			j.status.Running = false
			j.status.GaveUp = true
			s.mu.Unlock()
			s.cfg.Logf("core: monitor %q exceeded %d restarts, giving up", name, s.cfg.MaxRestarts)
			return
		}
		j.status.Restarts++
		s.mu.Unlock()
		backoff := s.cfg.BaseBackoff << restarts
		if backoff > s.cfg.MaxBackoff || backoff <= 0 {
			backoff = s.cfg.MaxBackoff
		}
		s.cfg.Logf("core: monitor %q restarting in %v (restart %d/%d)",
			name, backoff, restarts+1, s.cfg.MaxRestarts)
		s.cfg.Sleep(backoff)
	}
}

// runOnce executes one attempt of the job, converting a panic into a
// logged, recorded event.
func (s *Supervisor) runOnce(name string, j *supJob, run func(stop <-chan struct{}) error) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			msg := fmt.Sprint(r)
			s.mu.Lock()
			j.status.LastPanic = msg
			s.mu.Unlock()
			s.cfg.Logf("core: monitor %q panicked: %s", name, msg)
		}
	}()
	return run(s.stop), false
}

// Status returns a snapshot of one job.
func (s *Supervisor) Status(name string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return JobStatus{}, false
	}
	return j.status, true
}

// Statuses snapshots every supervised job.
func (s *Supervisor) Statuses() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status)
	}
	return out
}

// Stop shuts the supervisor down: the stop channel closes, running jobs are
// given the chance to return, and Stop blocks until every job goroutine has
// exited. Jobs mid-backoff exit without restarting.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.done {
		s.done = true
		close(s.stop)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// SuperviseMonitor runs online anomaly detection for ctx under sup (see
// Profile.SuperviseMonitor). Alerts report the original ctx even when it
// maps onto the global no-context profile.
func (s *System) SuperviseMonitor(sup *Supervisor, name string, ctx Context, warmup []float64, samples <-chan float64, onAlert func(Context)) error {
	p, ok := s.lookup(ctx)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoModel, ctx)
	}
	return p.superviseMonitor(ctx, sup, name, warmup, samples, onAlert)
}

// SuperviseMonitor runs online anomaly detection for this profile under
// sup: each (re)start builds a fresh Monitor from the trained detector —
// so a panic cannot leave a half-updated monitor behind — registers it in
// the profile's monitor registry under the job name, and feeds it CPI
// samples from samples; an alert invokes onAlert. The job ends (and the
// monitor detaches) when samples closes or the supervisor stops.
func (p *Profile) SuperviseMonitor(sup *Supervisor, name string, warmup []float64, samples <-chan float64, onAlert func(Context)) error {
	return p.superviseMonitor(p.key, sup, name, warmup, samples, onAlert)
}

func (p *Profile) superviseMonitor(errCtx Context, sup *Supervisor, name string, warmup []float64, samples <-chan float64, onAlert func(Context)) error {
	if _, err := p.detectorFor(errCtx); err != nil {
		return err // fail fast: no point supervising an untrainable job
	}
	return sup.Supervise(name, func(stop <-chan struct{}) error {
		m, err := p.newMonitorFor(errCtx, warmup)
		if err != nil {
			return err
		}
		p.monitors.Attach(name, m)
		defer p.monitors.Detach(name)
		for {
			select {
			case <-stop:
				return nil
			case v, ok := <-samples:
				if !ok {
					return nil
				}
				if m.Offer(v) && onAlert != nil {
					onAlert(errCtx)
				}
			}
		}
	})
}

package core

import (
	"math"
	"sync"

	"invarnetx/internal/invariant"
	"invarnetx/internal/mic"
)

// DefaultAssocCacheSize bounds the association-matrix cache when
// Config.AssocCacheSize is zero. At 26 metrics a matrix is ~2.6 KB, so the
// default worst case stays near 10 MB.
const DefaultAssocCacheSize = 4096

// CacheStats reports association-cache effectiveness. Without operation
// context the training pool is recomputed on every TrainInvariants call, so
// hit counts there directly measure avoided MIC work.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// assocKey identifies a cached matrix: the storage context plus a
// fingerprint of the exact window samples. Keying by context as well as
// content keeps an (astronomically unlikely) fingerprint collision from
// leaking a matrix across workloads.
type assocKey struct {
	ctx Context
	fp  uint64
}

// fingerprintRows hashes the window's shape and raw float64 bit patterns
// with FNV-1a. Associations are pure functions of the samples, so equal
// fingerprints (same shape, same bits) mean an equal matrix.
func fingerprintRows(rows [][]float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(rows)))
	for _, r := range rows {
		mix(uint64(len(r)))
		for _, v := range r {
			mix(math.Float64bits(v))
		}
	}
	return h
}

// assocCache memoises association matrices per (context, window) key with
// FIFO eviction. Cached matrices are shared across callers and must never
// be mutated — every consumer (Select, Violations) only reads.
type assocCache struct {
	mu      sync.Mutex
	max     int
	entries map[assocKey]*invariant.Matrix
	order   []assocKey
	hits    int64
	misses  int64
}

// newAssocCache sizes a cache: size 0 selects the default bound, negative
// disables caching entirely (returns nil; callers treat nil as a miss-only
// pass-through).
func newAssocCache(size int) *assocCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultAssocCacheSize
	}
	return &assocCache{
		max:     size,
		entries: make(map[assocKey]*invariant.Matrix),
	}
}

func (c *assocCache) get(k assocKey) (*invariant.Matrix, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return m, ok
}

func (c *assocCache) put(k assocKey, m *invariant.Matrix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[k]; exists {
		c.entries[k] = m
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = m
	c.order = append(c.order, k)
}

func (c *assocCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// BatchAssociation prepares a whole window of metric rows at once and
// returns a pair scorer over them. Batch preparation lets an association
// measure hoist per-metric work (sorting, partitioning for MIC) out of the
// m(m−1)/2 pair loop.
type BatchAssociation func(rows [][]float64) (invariant.PairScorer, error)

// MICBatch returns the batch form of the MIC association: metrics are
// prepared once via mic.NewBatch and pairs scored with pooled scratch
// buffers. Wired automatically by New when Assoc is the stock mic.MIC.
func MICBatch(cfg mic.Config) BatchAssociation {
	return func(rows [][]float64) (invariant.PairScorer, error) {
		return mic.NewBatch(rows, cfg)
	}
}

// BatchFor returns the batch form of assoc when one exists — currently only
// the stock mic.MIC — or nil when the measure must run per pair. It is the
// same gate New applies when auto-wiring Config.BatchAssoc.
func BatchFor(assoc invariant.AssociationFunc) BatchAssociation {
	if isStockMIC(assoc) {
		return MICBatch(mic.DefaultConfig())
	}
	return nil
}

// computeMatrix builds one window's association matrix, preferring the
// batch path when configured. Structural batch errors (ragged rows, empty
// window) fall through to the generic path so error reporting stays
// identical to the uncached pipeline.
func (s *System) computeMatrix(rows [][]float64) (*invariant.Matrix, error) {
	if s.cfg.BatchAssoc != nil {
		if scorer, err := s.cfg.BatchAssoc(rows); err == nil {
			return invariant.ComputeMatrixScored(len(rows), scorer)
		}
	}
	return invariant.ComputeMatrix(rows, s.cfg.Assoc)
}

// assocMatrix is computeMatrix behind the context-keyed cache. Training
// without operation context recomputes every pooled window per call; the
// cache turns those recomputations into lookups.
func (s *System) assocMatrix(key Context, rows [][]float64) (*invariant.Matrix, error) {
	if s.cache == nil {
		return s.computeMatrix(rows)
	}
	k := assocKey{ctx: key, fp: fingerprintRows(rows)}
	if m, ok := s.cache.get(k); ok {
		return m, nil
	}
	m, err := s.computeMatrix(rows)
	if err != nil {
		return nil, err
	}
	s.cache.put(k, m)
	return m, nil
}

// AssocCacheStats reports the association cache's hit/miss counters and
// current size. Zero-valued when caching is disabled.
func (s *System) AssocCacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.stats()
}

package core

import (
	"math"
	"sync"

	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
)

// DefaultAssocCacheSize bounds a profile's association-matrix cache when
// Config.AssocCacheSize is zero. At 26 metrics a matrix is ~2.6 KB, so the
// default worst case stays near 10 MB per profile.
const DefaultAssocCacheSize = 4096

// CacheStats reports association-cache effectiveness. Retraining recomputes
// the whole pooled window set on every TrainInvariants call, so hit counts
// directly measure avoided MIC work.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// fingerprintRows hashes the window's shape and raw float64 bit patterns
// with FNV-1a. Associations are pure functions of the samples, so equal
// fingerprints (same shape, same bits) mean an equal matrix.
func fingerprintRows(rows [][]float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(rows)))
	for _, r := range rows {
		mix(uint64(len(r)))
		for _, v := range r {
			mix(math.Float64bits(v))
		}
	}
	return h
}

// fingerprintWindow extends fingerprintRows over a window's validity mask,
// so a masked window and its unmasked twin (same samples, different
// validity) cannot share a cache entry. A nil mask leaves the rows-only
// fingerprint untouched.
func fingerprintWindow(rows [][]float64, valid [][]bool) uint64 {
	h := fingerprintRows(rows)
	if valid == nil {
		return h
	}
	const prime64 = 1099511628211
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(valid)))
	for _, row := range valid {
		mix(uint64(len(row)))
		var word uint64
		n := 0
		for _, ok := range row {
			word <<= 1
			if ok {
				word |= 1
			}
			if n++; n == 64 {
				mix(word)
				word, n = 0, 0
			}
		}
		if n > 0 {
			mix(word)
		}
	}
	return h
}

// reportSalt separates the sparse path's violation-report keys from the
// dense path's association-matrix keys inside one assocCache: a report is
// stored under fp^reportSalt, so the two entry kinds share the map, the
// FIFO bound and the hit counters without ever colliding on a fingerprint.
const reportSalt = 0x9e3779b97f4a7c15

// cacheEntry is one memoised analysis. Dense entries hold the association
// matrix plus the pair-knowledge mask (nil for a clean, all-known window);
// sparse entries hold the finished violation report instead, valid only
// while repSet is still the profile's current invariant set (pointer
// identity — retraining installs a fresh *Set, invalidating every cached
// report at once). All cached state is shared across callers and read-only.
type cacheEntry struct {
	mat  *invariant.Matrix
	mask *invariant.PairMask

	rep    *ViolationReport
	repSet *invariant.Set
}

// assocCache memoises window analyses per content fingerprint with FIFO
// eviction. Each profile owns its cache, so the key needs no context
// component and cached state never crosses profiles. Cached matrices and
// masks are shared across callers and must never be mutated — every
// consumer (Select, ViolationsMasked) only reads.
type assocCache struct {
	mu      sync.Mutex
	max     int
	entries map[uint64]cacheEntry
	order   []uint64
	hits    int64
	misses  int64
}

// newAssocCache sizes a cache: size 0 selects the default bound, negative
// disables caching entirely (returns nil; callers treat nil as a miss-only
// pass-through).
func newAssocCache(size int) *assocCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultAssocCacheSize
	}
	return &assocCache{
		max:     size,
		entries: make(map[uint64]cacheEntry),
	}
}

func (c *assocCache) get(fp uint64) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

func (c *assocCache) put(fp uint64, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[fp]; exists {
		c.entries[fp] = e
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[fp] = e
	c.order = append(c.order, fp)
}

func (c *assocCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// BatchAssociation prepares a whole window of metric rows at once and
// returns a pair scorer over them. Batch preparation lets an association
// measure hoist per-metric work (sorting, partitioning for MIC) out of the
// m(m−1)/2 pair loop.
type BatchAssociation func(rows [][]float64) (invariant.PairScorer, error)

// MICBatch returns the batch form of the MIC association: metrics are
// prepared once via mic.NewBatch and pairs scored with pooled scratch
// buffers. Wired automatically by New when Assoc is the stock mic.MIC.
func MICBatch(cfg mic.Config) BatchAssociation {
	return func(rows [][]float64) (invariant.PairScorer, error) {
		return mic.NewBatch(rows, cfg)
	}
}

// BatchFor returns the batch form of assoc when one exists — currently only
// the stock mic.MIC — or nil when the measure must run per pair. It is the
// same gate New applies when auto-wiring Config.BatchAssoc.
func BatchFor(assoc invariant.AssociationFunc) BatchAssociation {
	if isStockMIC(assoc) {
		return MICBatch(mic.DefaultConfig())
	}
	return nil
}

// compute analyses one window uncached: the association matrix plus the
// pair mask (nil on clean telemetry). Clean windows take the batch path
// when configured, with structural batch errors (ragged rows, empty window)
// falling through to the generic path so error reporting stays identical to
// the unbatched pipeline. Degraded windows run the same masked-first fill,
// with the batch scorer covering the full-overlap pairs.
func (p *Profile) compute(rows [][]float64, valid [][]bool, degraded bool) (*invariant.Matrix, *invariant.PairMask, error) {
	cfg := &p.sys.cfg
	if !degraded {
		if cfg.BatchAssoc != nil {
			if scorer, err := cfg.BatchAssoc(rows); err == nil {
				mat, err := invariant.ComputeMatrixScored(len(rows), scorer)
				return mat, nil, err
			}
		}
		mat, err := invariant.ComputeMatrix(rows, cfg.Assoc)
		return mat, nil, err
	}
	var scorer invariant.PairScorer
	if cfg.BatchAssoc != nil {
		// Full-overlap pairs score through the batch even on a degraded
		// window; preparation errors just drop the fast path.
		if sc, err := cfg.BatchAssoc(rows); err == nil {
			scorer = sc
		}
	}
	return invariant.ComputeMaskedMatrixScored(rows, valid, cfg.Assoc, scorer, 0)
}

// analyze is compute behind the profile's cache, keyed by the fingerprint
// of the window's samples and validity mask. Training recomputes every
// pooled window per call; the cache turns those recomputations into
// lookups — for degraded windows too, which the pre-profile pipeline never
// cached.
func (p *Profile) analyze(tr *metrics.Trace) (*invariant.Matrix, *invariant.PairMask, error) {
	degraded := traceDegraded(tr)
	if p.cache == nil {
		return p.compute(tr.Rows, tr.Valid, degraded)
	}
	fp := fingerprintWindow(tr.Rows, tr.Valid)
	if e, ok := p.cache.get(fp); ok {
		return e.mat, e.mask, nil
	}
	mat, mask, err := p.compute(tr.Rows, tr.Valid, degraded)
	if err != nil {
		return nil, nil, err
	}
	p.cache.put(fp, cacheEntry{mat: mat, mask: mask})
	return mat, mask, nil
}

// CacheStats reports the profile's association-cache counters and current
// size. Zero-valued when caching is disabled.
func (p *Profile) CacheStats() CacheStats {
	if p.cache == nil {
		return CacheStats{}
	}
	return p.cache.stats()
}

package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"invarnetx/internal/invariant"
	"invarnetx/internal/mic"
	"invarnetx/internal/xmlstore"
)

// This file is the drift-aware invariant lifecycle: the layer that keeps a
// long-running deployment's model healthy under nonstationarity instead of
// trusting the train-once snapshot forever.
//
// Per profile, every diagnosed window feeds the per-edge health series
// (invariant.Health): a CUSUM change-point test over each edge's violation
// indicator separates the persistent violation-rate shift of a *drifted*
// edge from the short bursts a genuine fault produces. A drifted edge
// degrades to quarantined — reported unknown to the diagnosis layer, so it
// can never appear in Violated, Hints or signature matching — but keeps
// being observed. Each quarantined edge re-estimates its baseline through
// an exponentially-decayed mean of the exact scores of later clean windows
// (mic.Decayed, the Slider pipeline's re-estimation extension); the
// re-estimated baselines form a *shadow model generation* evaluated
// side-by-side against the live one on the same windows, and promoted only
// when its false-positive rate beats the incumbent's. Promotion installs a
// fresh invariant.Set — the report cache invalidates for free through its
// set-identity check — and bumps the profile's generation; the whole state
// machine is persisted through xmlstore so a restart mid-promotion comes
// back to a consistent generation (see restoreLifecycle).

// LifecycleConfig parameterises the drift-aware invariant lifecycle. The
// zero value disables it (train-once behaviour, bit-identical to builds
// without the lifecycle layer); with Enabled set, zero-valued fields take
// the documented defaults.
type LifecycleConfig struct {
	// Enabled turns the lifecycle on for every profile of the system.
	Enabled bool
	// MinObservations is how many windows an edge must be observed before
	// it may be quarantined (default 8).
	MinObservations int
	// Drift is the tolerated per-window violation rate; the change-point
	// accumulator only collects the excess above it (default 0.1).
	Drift float64
	// Threshold is the change-point alarm level (default 4): an edge
	// violating every window quarantines in ~5 windows, while a short
	// fault burst drains back out.
	Threshold float64
	// DecayAlpha is the newest-score weight of the shadow re-estimation
	// (default mic.DefaultDecayAlpha).
	DecayAlpha float64
	// ShadowMinEvals is how many side-by-side evaluations every shadow
	// candidate needs before a promotion verdict (default 8).
	ShadowMinEvals int
	// ShadowMaxEvals bounds a candidate's evaluation budget: a candidate
	// that cannot qualify within it is rolled back and re-estimation
	// starts over (default 64).
	ShadowMaxEvals int
	// PromoteMaxRate is the highest shadow false-positive rate (violations
	// per evaluated window) a promotable generation may show (default
	// 0.125); it must also beat the incumbent's rate over the same
	// windows.
	PromoteMaxRate float64
}

func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.MinObservations <= 0 {
		c.MinObservations = 8
	}
	if c.Drift <= 0 {
		c.Drift = 0.1
	}
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.DecayAlpha <= 0 {
		c.DecayAlpha = mic.DefaultDecayAlpha
	}
	if c.ShadowMinEvals <= 0 {
		c.ShadowMinEvals = 8
	}
	if c.ShadowMaxEvals <= 0 {
		c.ShadowMaxEvals = 64
	}
	if c.ShadowMaxEvals < c.ShadowMinEvals {
		c.ShadowMaxEvals = c.ShadowMinEvals
	}
	if c.PromoteMaxRate <= 0 {
		c.PromoteMaxRate = 0.125
	}
	return c
}

// validate rejects nonsensical lifecycle parameters (see Config.Validate);
// zero values are fine — they select defaults.
func (c LifecycleConfig) validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	switch {
	case bad(c.Drift) || c.Drift > 1:
		return fmt.Errorf("core: Lifecycle.Drift %v outside [0,1] (tolerated violation rate)", c.Drift)
	case bad(c.Threshold):
		return fmt.Errorf("core: Lifecycle.Threshold %v is not a usable alarm level", c.Threshold)
	case bad(c.DecayAlpha) || c.DecayAlpha > 1:
		return fmt.Errorf("core: Lifecycle.DecayAlpha %v outside [0,1]", c.DecayAlpha)
	case bad(c.PromoteMaxRate) || c.PromoteMaxRate > 1:
		return fmt.Errorf("core: Lifecycle.PromoteMaxRate %v outside [0,1]", c.PromoteMaxRate)
	case c.MinObservations < 0 || c.ShadowMinEvals < 0 || c.ShadowMaxEvals < 0:
		return fmt.Errorf("core: negative lifecycle observation bounds")
	}
	return nil
}

// shadowWarmup is how many scores a shadow candidate absorbs before its
// side-by-side evaluation starts: the first estimates are too raw to judge.
const shadowWarmup = 3

// shadowEdge is the re-estimation state of one quarantined edge: the
// decayed candidate baseline plus the side-by-side tally of how often the
// candidate and the incumbent baseline each called a later window violated.
type shadowEdge struct {
	est        *mic.Decayed
	evals      int
	shadowViol int
	liveViol   int
}

// lifecycle is one profile's drift-lifecycle state. The epoch counter is
// read on the diagnosis hot path (report-cache salting) and therefore
// atomic; everything else is guarded by mu, which is never held while
// taking the profile lock (see Profile.lifecyclePost for the ordering).
type lifecycle struct {
	cfg LifecycleConfig

	epoch      atomic.Uint64
	promotions atomic.Int64
	rollbacks  atomic.Int64

	mu       sync.Mutex
	set      *invariant.Set
	health   *invariant.Health
	gen      uint64
	shadow   map[int]*shadowEdge // by sorted-pair index into set
	observed int64
}

func newLifecycle(cfg LifecycleConfig) *lifecycle {
	return &lifecycle{cfg: cfg.withDefaults()}
}

func (l *lifecycle) healthConfig() invariant.HealthConfig {
	return invariant.HealthConfig{
		MinObservations: l.cfg.MinObservations,
		Drift:           l.cfg.Drift,
		Threshold:       l.cfg.Threshold,
	}
}

// epochPrime spreads the epoch counter across the cache key space so
// consecutive epochs never collide with nearby fingerprints.
const epochPrime = 0xbf58476d1ce4e5b9

func (l *lifecycle) epochSalt() uint64 { return l.epoch.Load() * epochPrime }

// install points the lifecycle at a newly trained or loaded live set:
// next generation, fresh health, no shadow. Called after the profile lock
// is released, never under it.
func (l *lifecycle) install(set *invariant.Set) {
	l.mu.Lock()
	l.set = set
	l.health = invariant.NewHealth(set, l.healthConfig())
	l.shadow = nil
	l.gen++
	l.mu.Unlock()
	l.epoch.Add(1)
}

// observe feeds one window's raw edge verdicts (pre-quarantine, so
// quarantined edges keep being observed) computed against set. It returns
// the quarantine mask the window's report must apply — nil when every edge
// is live — and, when this window completed a qualifying evaluation round,
// the promoted set the caller must install as the live generation.
//
// score(k) supplies edge k's exact association score for shadow
// re-estimation; a nil score (degraded window, no exact scores at hand)
// observes health only. Windows computed against a set the lifecycle no
// longer tracks (a promotion or retrain won the race) carry stale verdicts
// and are discarded entirely.
func (l *lifecycle) observe(set *invariant.Set, raw, known []bool, score func(k int) (float64, bool), epsilon float64) (qmask []bool, promoted *invariant.Set) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.set != set || l.health == nil {
		return nil, nil
	}
	l.observed++
	drifted, err := l.health.Observe(raw, known)
	if err != nil {
		// Shape mismatches cannot happen for the tracked set; fail safe by
		// masking nothing new.
		return l.health.Quarantined(), nil
	}
	if len(drifted) > 0 {
		if l.shadow == nil {
			l.shadow = make(map[int]*shadowEdge)
		}
		for _, k := range drifted {
			l.shadow[k] = &shadowEdge{est: mic.NewDecayed(l.cfg.DecayAlpha)}
		}
		// The verdict surface changed: reports cached under the previous
		// epoch must not be served again.
		l.epoch.Add(1)
	}
	if score != nil {
		for k, sh := range l.shadow {
			if known != nil && !known[k] {
				continue
			}
			s, ok := score(k)
			if !ok {
				continue
			}
			// Judge the candidate on the new window *before* folding the
			// window's score into it — an unbiased side-by-side evaluation.
			if est, warmed := sh.est.Value(); warmed && sh.est.N() >= shadowWarmup {
				sh.evals++
				if invariant.Violated(est, s, epsilon) {
					sh.shadowViol++
				}
				if raw[k] {
					sh.liveViol++
				}
			}
			sh.est.Add(s)
		}
	}
	qmask = l.health.Quarantined()
	promoted = l.maybePromoteLocked()
	return qmask, promoted
}

// maybePromoteLocked decides the shadow generation's fate once every
// candidate has its evaluation quota. Promotion requires the aggregate
// shadow false-positive rate to sit under PromoteMaxRate *and* strictly
// beat the incumbent's rate over the same windows; candidates that exhaust
// ShadowMaxEvals without qualifying are rolled back (re-estimation starts
// over). Caller holds l.mu.
func (l *lifecycle) maybePromoteLocked() *invariant.Set {
	if len(l.shadow) == 0 {
		return nil
	}
	ready := true
	totEvals, totShadow, totLive := 0, 0, 0
	for _, sh := range l.shadow {
		totEvals += sh.evals
		totShadow += sh.shadowViol
		totLive += sh.liveViol
		if sh.evals < l.cfg.ShadowMinEvals {
			ready = false
		}
	}
	if ready && totEvals > 0 {
		shadowRate := float64(totShadow) / float64(totEvals)
		liveRate := float64(totLive) / float64(totEvals)
		if shadowRate <= l.cfg.PromoteMaxRate && shadowRate < liveRate {
			base := make(map[invariant.Pair]float64, len(l.set.Base))
			for p, v := range l.set.Base {
				base[p] = v
			}
			pairs := l.set.SortedPairs()
			for k, sh := range l.shadow {
				if v, ok := sh.est.Value(); ok {
					base[pairs[k]] = v
				}
			}
			next := invariant.NewSet(l.set.M, base)
			l.set = next
			l.health = invariant.NewHealth(next, l.healthConfig())
			l.shadow = nil
			l.gen++
			l.promotions.Add(1)
			l.epoch.Add(1)
			return next
		}
	}
	for _, sh := range l.shadow {
		if sh.evals >= l.cfg.ShadowMaxEvals {
			sh.est.Reset()
			sh.evals, sh.shadowViol, sh.liveViol = 0, 0, 0
			l.rollbacks.Add(1)
		}
	}
	return nil
}

// lifecycleSalt is the report-cache salt of the current lifecycle epoch:
// any quarantine or promotion bumps the epoch, so reports cached before
// the verdict surface changed can no longer be served. Zero without a
// lifecycle — the cache key reduces to the pre-lifecycle one exactly.
func (p *Profile) lifecycleSalt() uint64 {
	if p.lc == nil {
		return 0
	}
	return p.lc.epochSalt()
}

// lifecyclePost runs the lifecycle over one freshly computed window: health
// observation on the raw verdicts, shadow re-estimation, possibly a
// generation promotion, then quarantine masking. It returns the tuple and
// known mask the report must surface — quarantined edges become *unknown*
// (neither holding nor violated), so no spurious fault report can ever be
// attributed to them. With the lifecycle disabled it returns its inputs
// untouched.
func (p *Profile) lifecyclePost(set *invariant.Set, raw, known []bool, score func(k int) (float64, bool)) ([]bool, []bool) {
	l := p.lc
	if l == nil {
		return raw, known
	}
	qmask, promoted := l.observe(set, raw, known, score, p.sys.cfg.Epsilon)
	if promoted != nil {
		// The diagnosis that triggered the promotion still reports against
		// the set it was computed with; only later windows see the new
		// generation. l.mu is not held here (lock ordering: never l.mu
		// then p.mu while a holder of p.mu may want l.mu).
		p.mu.Lock()
		p.invariants = promoted
		p.mu.Unlock()
	}
	if qmask == nil {
		return raw, known
	}
	if known == nil {
		known = make([]bool, len(raw))
		for k := range known {
			known[k] = true
		}
	}
	for k, q := range qmask {
		if q {
			known[k] = false
			raw[k] = false
		}
	}
	return raw, known
}

// Generation returns the profile's model generation: 0 before any
// invariants exist (or with the lifecycle disabled), then incremented by
// every training, load and shadow promotion.
func (p *Profile) Generation() uint64 {
	if p.lc == nil {
		return 0
	}
	p.lc.mu.Lock()
	defer p.lc.mu.Unlock()
	return p.lc.gen
}

// LifecycleStats is an operator-facing snapshot of one profile's (or an
// aggregated system's) drift-lifecycle state.
type LifecycleStats struct {
	// Enabled reports whether the lifecycle is active.
	Enabled bool
	// Generation is the live model generation (the max across profiles in
	// the system aggregate).
	Generation uint64
	// Edges is the tracked edge count; Quarantined of them are drifted.
	Edges, Quarantined int
	// ShadowAge is the oldest active shadow candidate's side-by-side
	// evaluation count — how close the next generation is to a verdict.
	ShadowAge int
	// Observed counts diagnosed windows fed to health tracking.
	Observed int64
	// Promotions and Rollbacks count shadow generations accepted and
	// discarded.
	Promotions, Rollbacks int64
}

// LifecycleStats snapshots the profile's drift-lifecycle state; the zero
// value when the lifecycle is disabled.
func (p *Profile) LifecycleStats() LifecycleStats {
	l := p.lc
	if l == nil {
		return LifecycleStats{}
	}
	st := LifecycleStats{
		Enabled:    true,
		Promotions: l.promotions.Load(),
		Rollbacks:  l.rollbacks.Load(),
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st.Generation = l.gen
	st.Observed = l.observed
	if l.set != nil {
		st.Edges = l.set.Len()
	}
	if l.health != nil {
		st.Quarantined = l.health.QuarantinedCount()
	}
	for _, sh := range l.shadow {
		if sh.evals > st.ShadowAge {
			st.ShadowAge = sh.evals
		}
	}
	return st
}

// LifecycleEdges returns the per-edge health series of the live generation
// in sorted-pair order (nil when the lifecycle is disabled or untrained).
func (p *Profile) LifecycleEdges() []invariant.EdgeHealth {
	l := p.lc
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.health == nil {
		return nil
	}
	return l.health.Snapshot()
}

// LifecycleStats aggregates the drift-lifecycle counters across every
// profile: summed counts, max generation and shadow age.
func (s *System) LifecycleStats() LifecycleStats {
	st := LifecycleStats{Enabled: s.cfg.Lifecycle.Enabled}
	for _, p := range s.Profiles() {
		ps := p.LifecycleStats()
		st.Edges += ps.Edges
		st.Quarantined += ps.Quarantined
		st.Observed += ps.Observed
		st.Promotions += ps.Promotions
		st.Rollbacks += ps.Rollbacks
		if ps.ShadowAge > st.ShadowAge {
			st.ShadowAge = ps.ShadowAge
		}
		if ps.Generation > st.Generation {
			st.Generation = ps.Generation
		}
	}
	return st
}

// fingerprintSet hashes a set's identity — dimension, pairs and baselines
// (FNV-1a over the sorted pairs and float bits) — so a persisted lifecycle
// file can prove it describes the invariants file next to it. A crash
// between the two writes leaves a mismatch, and restore falls back to a
// fresh edge state over the loaded (complete, consistent) invariants.
func fingerprintSet(set *invariant.Set) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(set.M))
	for _, pr := range set.SortedPairs() {
		mix(uint64(pr.I))
		mix(uint64(pr.J))
		mix(math.Float64bits(set.Base[pr]))
	}
	return h
}

// lifecycleFile snapshots the lifecycle for persistence; ok is false when
// there is nothing to persist (lifecycle disabled or untrained).
func (p *Profile) lifecycleFile() (xmlstore.LifecycleFile, bool) {
	l := p.lc
	if l == nil {
		return xmlstore.LifecycleFile{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.set == nil || l.health == nil {
		return xmlstore.LifecycleFile{}, false
	}
	f := xmlstore.LifecycleFile{
		Version:        xmlstore.FormatVersion,
		IP:             p.key.IP,
		Type:           p.key.Workload,
		Generation:     l.gen,
		SetFingerprint: fmt.Sprintf("%016x", fingerprintSet(l.set)),
		Observed:       l.observed,
		Promotions:     l.promotions.Load(),
		Rollbacks:      l.rollbacks.Load(),
	}
	for k, e := range l.health.Snapshot() {
		le := xmlstore.LifecycleEdge{
			I: e.Pair.I, J: e.Pair.J,
			State: e.State.String(),
			Obs:   e.Obs, Viol: e.Viol,
			Rate: e.Rate, Score: e.Score,
		}
		if sh := l.shadow[k]; sh != nil {
			if v, ok := sh.est.Value(); ok {
				le.ShadowBase = v
				le.ShadowN = sh.est.N()
			}
			le.ShadowEvals = sh.evals
			le.ShadowViol = sh.shadowViol
			le.LiveViol = sh.liveViol
		}
		f.Edges = append(f.Edges, le)
	}
	return f, true
}

// restoreLifecycle applies a persisted lifecycle file against the
// profile's already-loaded invariants. The monotonic counters (generation,
// promotions, rollbacks, observed windows) always restore; the per-edge
// health and shadow state restores only when the file's set fingerprint
// matches the loaded invariants — a mismatch means the process died
// between the invariants and lifecycle writes (e.g. mid-promotion), and
// the loaded invariants are the single consistent generation to trust, so
// edge state starts fresh over them. applied is false when the profile
// runs no lifecycle.
func (p *Profile) restoreLifecycle(f *xmlstore.LifecycleFile) (applied bool, err error) {
	l := p.lc
	if l == nil {
		return false, nil
	}
	p.mu.RLock()
	set := p.invariants
	p.mu.RUnlock()
	if set == nil {
		return false, fmt.Errorf("core: lifecycle state for %v has no invariants to attach to", p.key)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.set = set
	l.health = invariant.NewHealth(set, l.healthConfig())
	l.shadow = nil
	l.gen = f.Generation
	l.observed = f.Observed
	l.promotions.Store(f.Promotions)
	l.rollbacks.Store(f.Rollbacks)
	l.epoch.Add(1)
	if fmt.Sprintf("%016x", fingerprintSet(set)) != f.SetFingerprint {
		return true, nil // crash between writes: consistent generation, fresh edge state
	}
	pairs := set.SortedPairs()
	idx := make(map[invariant.Pair]int, len(pairs))
	for k, pr := range pairs {
		idx[pr] = k
	}
	for _, e := range f.Edges {
		st, perr := invariant.ParseEdgeState(e.State)
		if perr != nil {
			err = perr
			break
		}
		eh := invariant.EdgeHealth{
			Pair:  invariant.Pair{I: e.I, J: e.J},
			State: st,
			Obs:   e.Obs, Viol: e.Viol,
			Rate: e.Rate, Score: e.Score,
		}
		if rerr := l.health.Restore(eh); rerr != nil {
			err = rerr
			break
		}
		if st == invariant.EdgeQuarantined {
			sh := &shadowEdge{
				est:        mic.NewDecayed(l.cfg.DecayAlpha),
				evals:      e.ShadowEvals,
				shadowViol: e.ShadowViol,
				liveViol:   e.LiveViol,
			}
			sh.est.Restore(e.ShadowBase, e.ShadowN)
			if l.shadow == nil {
				l.shadow = make(map[int]*shadowEdge)
			}
			l.shadow[idx[eh.Pair]] = sh
		}
	}
	if err != nil {
		// A corrupt edge entry must not leave half a generation's state:
		// fall back to fresh edge state, as for a fingerprint mismatch.
		l.health = invariant.NewHealth(set, l.healthConfig())
		l.shadow = nil
		return true, err
	}
	return true, nil
}

package detect

import (
	"sort"
	"sync"
)

// Registry tracks the live named monitors of one diagnosis scope (in
// InvarNet-X, one operation-context profile). Supervised monitor jobs
// attach the monitor of each (re)start under the job name and detach it
// when the job ends, so operators can enumerate what is being watched
// right now. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	monitors map[string]*Monitor
}

// NewRegistry returns an empty monitor registry.
func NewRegistry() *Registry {
	return &Registry{monitors: make(map[string]*Monitor)}
}

// Attach registers m under name, replacing any monitor previously attached
// under the same name (a supervised restart attaches its fresh monitor over
// the panicked one).
func (r *Registry) Attach(name string, m *Monitor) {
	r.mu.Lock()
	r.monitors[name] = m
	r.mu.Unlock()
}

// Detach removes the monitor registered under name, if any.
func (r *Registry) Detach(name string) {
	r.mu.Lock()
	delete(r.monitors, name)
	r.mu.Unlock()
}

// Get returns the monitor registered under name.
func (r *Registry) Get(name string) (*Monitor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.monitors[name]
	return m, ok
}

// Names returns the attached monitor names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.monitors))
	for name := range r.monitors {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns how many monitors are attached.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.monitors)
}

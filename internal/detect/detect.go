// Package detect implements the performance-anomaly detector of §3.2: an
// ARIMA model of normal-state CPI, a residual threshold chosen by one of
// three rules (max-min, 95-percentile, beta-max), and the rule that a
// performance problem is reported only after three consecutive anomalous
// samples, "to make the performance anomaly detection more robust to resist
// system noises".
package detect

import (
	"errors"
	"fmt"
	"math"

	"invarnetx/internal/arima"
	"invarnetx/internal/stats"
)

// Rule selects how the anomaly threshold is derived from the training
// residuals R (§3.2).
type Rule int

const (
	// BetaMax uses beta*max(R); the paper's final choice (beta = 1.2).
	BetaMax Rule = iota
	// MaxMin uses max(R) as the upper bar and min(R) as the lower bar.
	MaxMin
	// P95 uses the 95th percentile of R; the worst performer in Fig. 6.
	P95
)

func (r Rule) String() string {
	switch r {
	case BetaMax:
		return "beta-max"
	case MaxMin:
		return "max-min"
	case P95:
		return "95-percentile"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Rules lists the three threshold rules, for the Fig. 6 comparison.
func Rules() []Rule { return []Rule{MaxMin, P95, BetaMax} }

// Default parameters from the paper.
const (
	// DefaultBeta is the beta-max fluctuation factor.
	DefaultBeta = 1.2
	// DefaultConsecutive is how many consecutive anomalous samples
	// constitute a reported performance problem.
	DefaultConsecutive = 3
)

// ErrNoTraining is returned when no usable training traces are supplied.
var ErrNoTraining = errors.New("detect: no usable training traces")

// Config parameterises detector training.
type Config struct {
	Rule        Rule
	Beta        float64 // beta-max factor, default 1.2
	Consecutive int     // default 3
	Select      arima.SelectConfig
}

// DefaultConfig returns the paper's configuration (beta-max, beta=1.2,
// 3 consecutive anomalies).
//
// The ARIMA order search is restricted to d=0: the CPI of a job under a
// fixed operation context is mean-stationary by construction, and an
// integrating (d>=1) model would adapt its one-step forecasts to a
// fault-induced CPI level shift within a couple of samples, leaving only a
// transient residual — the drift the detector exists to see would vanish.
// A d=0 model stays anchored to the normal-state level, so a shift shows
// up as a sustained residual.
func DefaultConfig() Config {
	sel := arima.DefaultSelectConfig()
	sel.MaxD = 0
	return Config{Rule: BetaMax, Beta: DefaultBeta, Consecutive: DefaultConsecutive, Select: sel}
}

// Detector is a trained CPI anomaly detector for one operation context.
type Detector struct {
	Model *arima.Model
	Rule  Rule
	// Upper is the residual-magnitude threshold; Lower is only used by
	// the max-min rule (an anomaly also fires when |residual| drops below
	// it, which is what gives max-min its extra cost and false alarms).
	Upper       float64
	Lower       float64
	Consecutive int
}

// Train fits an ARIMA model on the normal CPI traces and derives the
// thresholds per cfg: "Each type of workload is repeated for N times...
// we use the trained ARIMA model to fit the CPI data during N runs. The
// absolute value of fitting residual is denoted by R."
func Train(traces [][]float64, cfg Config) (*Detector, error) {
	if cfg.Beta <= 0 {
		cfg.Beta = DefaultBeta
	}
	if cfg.Consecutive <= 0 {
		cfg.Consecutive = DefaultConsecutive
	}
	// Telemetry gaps surface as NaN samples inside CPI traces. The ARIMA
	// recursions propagate a single NaN through every later residual, so a
	// trace is split at its non-finite samples and each finite segment is
	// fitted as an independent trace (CSS treats traces independently
	// anyway). Segments too short to carry lag structure are dropped.
	traces = splitFiniteSegments(traces)
	if len(traces) == 0 {
		return nil, ErrNoTraining
	}
	model, err := arima.FitMulti(traces, cfg.Select)
	if err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	var r []float64
	for _, tr := range traces {
		res, err := model.Residuals(tr)
		if err != nil {
			continue
		}
		r = append(r, stats.Abs(res)...)
	}
	// A non-finite residual would make beta*max(R) (and every other rule)
	// NaN, silencing the detector forever; drop them before thresholding.
	r = stats.DropNonFinite(r)
	if len(r) == 0 {
		return nil, ErrNoTraining
	}
	d := &Detector{Model: model, Rule: cfg.Rule, Consecutive: cfg.Consecutive}
	switch cfg.Rule {
	case MaxMin:
		d.Upper, _ = stats.Max(r)
		d.Lower, _ = stats.Min(r)
	case P95:
		d.Upper, _ = stats.Percentile(r, 95)
	case BetaMax:
		mx, _ := stats.Max(r)
		d.Upper = cfg.Beta * mx
	default:
		return nil, fmt.Errorf("detect: unknown rule %v", cfg.Rule)
	}
	return d, nil
}

// minSegment is the shortest finite CPI segment worth fitting: enough
// samples to expose lag structure to the order search.
const minSegment = 8

// splitFiniteSegments breaks every trace at its NaN/±Inf samples and
// returns the finite segments of usable length. Fully finite traces pass
// through unchanged.
func splitFiniteSegments(traces [][]float64) [][]float64 {
	var out [][]float64
	for _, tr := range traces {
		if stats.AllFinite(tr) {
			if len(tr) > 0 {
				out = append(out, tr)
			}
			continue
		}
		start := -1
		for i := 0; i <= len(tr); i++ {
			finite := i < len(tr) && !math.IsNaN(tr[i]) && !math.IsInf(tr[i], 0)
			if finite && start < 0 {
				start = i
			}
			if !finite && start >= 0 {
				if i-start >= minSegment {
					out = append(out, tr[start:i])
				}
				start = -1
			}
		}
	}
	return out
}

// Residual returns |observed − predicted| for the sample following history.
func (d *Detector) Residual(history []float64, observed float64) (float64, error) {
	pred, err := d.Model.PredictNext(history)
	if err != nil {
		return 0, err
	}
	diff := observed - pred
	if diff < 0 {
		diff = -diff
	}
	return diff, nil
}

// Anomalous classifies a single residual magnitude under the rule.
func (d *Detector) Anomalous(residual float64) bool {
	switch d.Rule {
	case MaxMin:
		return residual > d.Upper || residual < d.Lower
	default:
		return residual > d.Upper
	}
}

// ResidualSeries returns |one-step residuals| of the model over a full CPI
// trace (for Fig. 5-style plots). The first d+max(p,q) samples are skipped.
func (d *Detector) ResidualSeries(trace []float64) ([]float64, error) {
	res, err := d.Model.Residuals(trace)
	if err != nil {
		return nil, err
	}
	return stats.Abs(res), nil
}

// Monitor is the online detection state for one running job: feed CPI
// samples as they arrive; Alert fires after Consecutive anomalous samples
// in a row.
//
// The monitor streams: prediction state lives in an arima.Forecaster whose
// forecasts are bit-identical to PredictNext over the accumulated history,
// so each Offer costs O(model lag) time and the monitor's memory does not
// grow with the stream (unless AnomalyLog is left enabled). A monitor
// embedded in a long-lived server must set DisableLog.
type Monitor struct {
	d       *Detector
	fc      *arima.Forecaster
	run     int
	alerted bool
	// AnomalyLog records the per-sample anomaly decisions (Fig. 6 plots).
	// It grows by one entry per Offer; DisableLog stops the recording for
	// unbounded streams.
	AnomalyLog []bool
	// DisableLog turns off AnomalyLog recording, keeping the monitor's
	// memory constant however long it runs.
	DisableLog bool
	// gaps counts missing (NaN/±Inf) samples offered so far; consecGaps is
	// the current run of them.
	gaps       int
	consecGaps int
}

// NewMonitor starts a monitor seeded with the warm-up CPI history (at least
// the model's lag depth; typically the first samples of the run). Non-finite
// warm-up samples — telemetry gaps — are excluded from the seed history so
// they cannot poison the first forecasts.
func (d *Detector) NewMonitor(warmup []float64) *Monitor {
	m := &Monitor{d: d, fc: d.Model.NewForecaster()}
	for _, v := range warmup {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			m.fc.Observe(v)
		}
	}
	return m
}

// Offer feeds one CPI sample and returns whether this sample is anomalous.
// Samples too early to predict are treated as normal.
//
// A NaN/±Inf sample is a telemetry gap, not an observation: it is excluded
// from the prediction history (a NaN would poison every later forecast) and
// is neither anomalous nor normal, so it leaves the consecutive-anomaly
// counter untouched. Only when the outage itself reaches Consecutive
// missing samples is the counter cleared — at that point the detector can
// no longer claim that anomalies straddling the outage were consecutive.
func (m *Monitor) Offer(sample float64) bool {
	if math.IsNaN(sample) || math.IsInf(sample, 0) {
		m.gaps++
		m.consecGaps++
		if m.consecGaps >= m.d.Consecutive {
			m.run = 0
		}
		if !m.DisableLog {
			m.AnomalyLog = append(m.AnomalyLog, false)
		}
		return false
	}
	m.consecGaps = 0
	pred, err := m.fc.PredictNext()
	m.fc.Observe(sample)
	res := sample - pred
	if res < 0 {
		res = -res
	}
	anom := err == nil && m.d.Anomalous(res)
	if anom {
		m.run++
		if m.run >= m.d.Consecutive {
			m.alerted = true
		}
	} else {
		m.run = 0
	}
	if !m.DisableLog {
		m.AnomalyLog = append(m.AnomalyLog, anom)
	}
	return anom
}

// Alert reports whether the consecutive-anomaly rule has fired.
func (m *Monitor) Alert() bool { return m.alerted }

// Gaps returns how many missing (non-finite) samples the monitor has seen.
func (m *Monitor) Gaps() int { return m.gaps }

// Reset clears the alert state but keeps the history (diagnosis resolved,
// monitoring continues).
func (m *Monitor) Reset() {
	m.alerted = false
	m.run = 0
}

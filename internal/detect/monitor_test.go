package detect

import (
	"testing"
)

// These tests cover the online monitor's edge behaviour beyond the happy
// paths in detect_test.go.

func trainedDetector(t *testing.T, seed int64) *Detector {
	t.Helper()
	d, err := Train(normalTraces(seed, 8, 120), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMonitorEmptyWarmup(t *testing.T) {
	d := trainedDetector(t, 520)
	m := d.NewMonitor(nil)
	// Samples arriving before the model has enough history are treated as
	// normal, never panic.
	for i := 0; i < 10; i++ {
		m.Offer(1.0)
	}
	if m.Alert() {
		t.Error("alert with no meaningful history")
	}
	if len(m.AnomalyLog) != 10 {
		t.Errorf("log length = %d", len(m.AnomalyLog))
	}
}

func TestMonitorAnomalyLogMatchesOffers(t *testing.T) {
	d := trainedDetector(t, 521)
	warm := normalTraces(522, 1, 20)[0]
	m := d.NewMonitor(warm)
	seq := []float64{1.0, 1.0, 5.0, 1.0, 5.0, 5.0, 5.0}
	for _, v := range seq {
		m.Offer(v)
	}
	if len(m.AnomalyLog) != len(seq) {
		t.Fatalf("log = %d entries, want %d", len(m.AnomalyLog), len(seq))
	}
	if m.AnomalyLog[0] || m.AnomalyLog[1] {
		t.Error("normal samples flagged")
	}
	if !m.AnomalyLog[2] {
		t.Error("5.0 spike not flagged")
	}
}

func TestMonitorAlertRequiresExactlyConsecutive(t *testing.T) {
	// A mean-only model makes the anomaly decisions memoryless, so the
	// consecutive counting is exactly observable.
	cfg := DefaultConfig()
	cfg.Consecutive = 4
	cfg.Select.MaxP, cfg.Select.MaxQ, cfg.Select.MaxD = -1, -1, -1
	d, err := Train(normalTraces(523, 8, 120), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Model.Order.P != 0 || d.Model.Order.Q != 0 {
		t.Fatalf("expected mean-only model, got %v", d.Model.Order)
	}
	warm := normalTraces(524, 1, 20)[0]
	m := d.NewMonitor(warm)
	// Three anomalies then a normal sample: run of 3 < 4, no alert.
	m.Offer(5.0)
	m.Offer(5.0)
	m.Offer(5.0)
	m.Offer(1.0)
	if m.Alert() {
		t.Error("alert after a 3-run with Consecutive=4")
	}
	// Four in a row: alert.
	for i := 0; i < 4; i++ {
		m.Offer(5.0)
	}
	if !m.Alert() {
		t.Error("no alert after 4 consecutive anomalies")
	}
}

func TestMonitorAlertLatchesUntilReset(t *testing.T) {
	d := trainedDetector(t, 525)
	warm := normalTraces(526, 1, 20)[0]
	m := d.NewMonitor(warm)
	for i := 0; i < 5; i++ {
		m.Offer(5.0)
	}
	if !m.Alert() {
		t.Fatal("no alert")
	}
	// Back to normal: the alert stays latched (the operator clears it).
	for i := 0; i < 5; i++ {
		m.Offer(1.0)
	}
	if !m.Alert() {
		t.Error("alert dropped without Reset")
	}
	m.Reset()
	if m.Alert() {
		t.Error("Reset did not clear")
	}
	// And it can fire again.
	for i := 0; i < 5; i++ {
		m.Offer(5.0)
	}
	if !m.Alert() {
		t.Error("no re-alert after Reset")
	}
}

func TestDetectorResidualAgainstKnownValue(t *testing.T) {
	d := trainedDetector(t, 527)
	hist := normalTraces(528, 1, 40)[0]
	pred, err := d.Model.PredictNext(hist)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Residual(hist, pred+0.5)
	if err != nil {
		t.Fatal(err)
	}
	if diff := r - 0.5; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("residual = %v, want exactly 0.5", r)
	}
	r, err = d.Residual(hist, pred-0.3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := r - 0.3; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("|residual| = %v, want 0.3", r)
	}
}

func TestTrainWithPartiallyUnusableTraces(t *testing.T) {
	// Traces too short to score residuals are skipped, not fatal.
	traces := normalTraces(529, 6, 100)
	traces = append(traces, []float64{1.0})
	d, err := Train(traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Upper <= 0 {
		t.Errorf("Upper = %v", d.Upper)
	}
}

func TestDetectorDiagnosticsIntegration(t *testing.T) {
	// The trained CPI model's residuals on a fresh normal trace should be
	// white per the Ljung-Box diagnostics exposed via the arima layer.
	d := trainedDetector(t, 530)
	fresh := normalTraces(531, 1, 200)[0]
	diag, err := d.Model.Diagnose(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.White {
		t.Errorf("normal-trace residuals rejected as non-white: %+v", diag)
	}
}

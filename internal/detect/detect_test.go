package detect

import (
	"testing"

	"invarnetx/internal/stats"
)

// normalTraces builds N CPI-like traces: AR(1) around a base level.
func normalTraces(seed int64, n, length int) [][]float64 {
	rng := stats.NewRNG(seed)
	out := make([][]float64, n)
	for i := range out {
		r := rng.Fork(int64(i))
		tr := make([]float64, length)
		tr[0] = 1.0
		for t := 1; t < length; t++ {
			tr[t] = 1.0 + 0.6*(tr[t-1]-1.0) + r.Normal(0, 0.02)
		}
		out[i] = tr
	}
	return out
}

func TestTrainAllRules(t *testing.T) {
	traces := normalTraces(500, 10, 120)
	for _, rule := range Rules() {
		cfg := DefaultConfig()
		cfg.Rule = rule
		d, err := Train(traces, cfg)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		if d.Upper <= 0 {
			t.Errorf("%v: Upper = %v", rule, d.Upper)
		}
		if rule == MaxMin && d.Lower < 0 {
			t.Errorf("max-min Lower = %v", d.Lower)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("no traces should error")
	}
	cfg := DefaultConfig()
	cfg.Rule = Rule(42)
	if _, err := Train(normalTraces(1, 3, 60), cfg); err == nil {
		t.Error("unknown rule should error")
	}
}

func TestThresholdOrdering(t *testing.T) {
	// By construction: P95 threshold <= max(R) <= beta*max(R).
	traces := normalTraces(501, 10, 120)
	mk := func(rule Rule) *Detector {
		cfg := DefaultConfig()
		cfg.Rule = rule
		d, err := Train(traces, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	p95 := mk(P95)
	mm := mk(MaxMin)
	bm := mk(BetaMax)
	if !(p95.Upper <= mm.Upper && mm.Upper <= bm.Upper) {
		t.Errorf("thresholds not ordered: p95=%v maxmin=%v betamax=%v", p95.Upper, mm.Upper, bm.Upper)
	}
}

func TestNormalDataRarelyFlags(t *testing.T) {
	traces := normalTraces(502, 10, 120)
	d, err := Train(traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh normal trace: beta-max should flag (almost) nothing.
	fresh := normalTraces(777, 1, 200)[0]
	m := d.NewMonitor(fresh[:10])
	flags := 0
	for _, v := range fresh[10:] {
		if m.Offer(v) {
			flags++
		}
	}
	if rate := float64(flags) / float64(len(fresh)-10); rate > 0.02 {
		t.Errorf("false-positive rate on normal data = %v", rate)
	}
	if m.Alert() {
		t.Error("alert fired on normal data")
	}
}

func TestAnomalyDetectedOnLevelShift(t *testing.T) {
	traces := normalTraces(503, 10, 120)
	d, err := Train(traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Normal prefix then a CPU-hog-like CPI level shift.
	rng := stats.NewRNG(504)
	trace := make([]float64, 80)
	trace[0] = 1
	for t1 := 1; t1 < len(trace); t1++ {
		base := 1.0
		if t1 >= 40 {
			base = 1.8
		}
		trace[t1] = base + 0.6*(trace[t1-1]-base) + rng.Normal(0, 0.02)
	}
	m := d.NewMonitor(trace[:10])
	alertAt := -1
	for i, v := range trace[10:] {
		m.Offer(v)
		if m.Alert() && alertAt < 0 {
			alertAt = i + 10
		}
	}
	if alertAt < 0 {
		t.Fatal("no alert on level shift")
	}
	if alertAt < 40 {
		t.Errorf("alert at %d, before the shift at 40", alertAt)
	}
	if alertAt > 50 {
		t.Errorf("alert at %d, too long after the shift at 40", alertAt)
	}
}

func TestConsecutiveRuleSuppressesSpikes(t *testing.T) {
	traces := normalTraces(505, 10, 120)
	d, err := Train(traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(506)
	trace := make([]float64, 60)
	trace[0] = 1
	for t1 := 1; t1 < len(trace); t1++ {
		trace[t1] = 1 + 0.6*(trace[t1-1]-1) + rng.Normal(0, 0.02)
	}
	// One isolated spike: single anomalous sample, no alert.
	m := d.NewMonitor(trace[:10])
	for i, v := range trace[10:] {
		if i == 20 {
			v += 2.0
		}
		m.Offer(v)
	}
	if m.Alert() {
		t.Error("single spike should not alert under the 3-consecutive rule")
	}
}

func TestMonitorReset(t *testing.T) {
	traces := normalTraces(507, 8, 100)
	d, err := Train(traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := d.NewMonitor(normalTraces(508, 1, 20)[0])
	for i := 0; i < 5; i++ {
		m.Offer(5.0) // wildly anomalous
	}
	if !m.Alert() {
		t.Fatal("no alert on sustained anomaly")
	}
	m.Reset()
	if m.Alert() {
		t.Error("Reset did not clear alert")
	}
}

func TestResidualSeries(t *testing.T) {
	traces := normalTraces(509, 8, 100)
	d, err := Train(traces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.ResidualSeries(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r < 0 {
			t.Fatal("residual series must be absolute values")
		}
	}
	if len(rs) >= len(traces[0]) {
		t.Error("residual series should skip unpredictable prefix")
	}
}

func TestMaxMinLowerBarFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rule = MaxMin
	traces := normalTraces(510, 10, 120)
	d, err := Train(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lower <= 0 {
		t.Skip("degenerate lower bar")
	}
	// A residual below the lower bar is anomalous under max-min only.
	r := d.Lower / 2
	if !d.Anomalous(r) {
		t.Error("max-min should flag residuals below the lower bar")
	}
	d2, _ := Train(traces, DefaultConfig())
	if d2.Anomalous(r) {
		t.Error("beta-max should not flag tiny residuals")
	}
}

func TestRuleString(t *testing.T) {
	for _, r := range Rules() {
		if r.String() == "" {
			t.Error("empty rule name")
		}
	}
	if BetaMax.String() != "beta-max" {
		t.Errorf("BetaMax = %q", BetaMax.String())
	}
}

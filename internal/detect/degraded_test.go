package detect

import (
	"math"
	"testing"

	"invarnetx/internal/arima"
)

// flatDetector predicts a constant 1.0 (ARIMA(0,0,0) with intercept 1), so a
// sample's residual is simply |sample-1|. Upper=0.5 makes samples outside
// [0.5, 1.5] anomalous.
func flatDetector() *Detector {
	return &Detector{
		Model:       &arima.Model{Intercept: 1},
		Rule:        BetaMax,
		Upper:       0.5,
		Consecutive: 3,
	}
}

func TestTrainDropsNonFiniteResiduals(t *testing.T) {
	// One clean trace plus one trace with NaN gaps; training must produce a
	// finite threshold instead of beta*NaN.
	clean := make([]float64, 40)
	holey := make([]float64, 40)
	for i := range clean {
		v := 1 + 0.01*math.Sin(float64(i))
		clean[i] = v
		holey[i] = v
	}
	holey[5] = math.NaN()
	holey[25] = math.Inf(1)
	d, err := Train([][]float64{clean, holey}, DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if math.IsNaN(d.Upper) || math.IsInf(d.Upper, 0) || d.Upper <= 0 {
		t.Fatalf("threshold %v not finite positive", d.Upper)
	}
}

func TestTrainAllNonFinite(t *testing.T) {
	bad := make([]float64, 20)
	for i := range bad {
		bad[i] = math.NaN()
	}
	if _, err := Train([][]float64{bad}, DefaultConfig()); err == nil {
		t.Fatal("Train on all-NaN trace should fail, not produce a NaN model")
	}
}

func TestSplitFiniteSegments(t *testing.T) {
	tr := make([]float64, 30)
	for i := range tr {
		tr[i] = 1
	}
	tr[10] = math.NaN() // segments: [0,10) len 10, [11,30) len 19
	segs := splitFiniteSegments([][]float64{tr})
	if len(segs) != 2 || len(segs[0]) != 10 || len(segs[1]) != 19 {
		t.Fatalf("segments = %d lens %v", len(segs), segs)
	}
	// Short fragments (< minSegment) are dropped.
	short := []float64{1, 2, math.NaN(), 3, 4}
	if segs := splitFiniteSegments([][]float64{short}); len(segs) != 0 {
		t.Fatalf("short fragments kept: %v", segs)
	}
}

func TestMonitorGapPreservesRun(t *testing.T) {
	d := flatDetector()
	m := d.NewMonitor([]float64{1})
	// Two anomalies, one gap, one anomaly: the gap must neither reset nor
	// extend the consecutive count, so the third anomaly fires the alert.
	m.Offer(3)
	m.Offer(3)
	if m.Alert() {
		t.Fatal("alert after 2 anomalies")
	}
	m.Offer(math.NaN())
	if m.Alert() {
		t.Fatal("gap counted as anomaly")
	}
	m.Offer(3)
	if !m.Alert() {
		t.Fatal("single gap broke the consecutive-anomaly counter")
	}
	if m.Gaps() != 1 {
		t.Fatalf("Gaps = %d, want 1", m.Gaps())
	}
}

func TestMonitorLongOutageResetsRun(t *testing.T) {
	d := flatDetector()
	m := d.NewMonitor([]float64{1})
	m.Offer(3)
	m.Offer(3)
	// An outage as long as the consecutive threshold clears the counter.
	m.Offer(math.NaN())
	m.Offer(math.Inf(1))
	m.Offer(math.NaN())
	m.Offer(3)
	if m.Alert() {
		t.Fatal("anomalies straddling a long outage treated as consecutive")
	}
	m.Offer(3)
	m.Offer(3)
	if !m.Alert() {
		t.Fatal("fresh consecutive anomalies after outage did not alert")
	}
	if m.Gaps() != 3 {
		t.Fatalf("Gaps = %d, want 3", m.Gaps())
	}
}

func TestMonitorGapDoesNotPoisonHistory(t *testing.T) {
	d := flatDetector()
	m := d.NewMonitor([]float64{1})
	m.Offer(math.NaN())
	// After a gap, a normal sample must still produce a finite residual
	// decision (NaN in history would make every later residual NaN).
	if m.Offer(1.1) {
		t.Fatal("normal sample after gap flagged anomalous")
	}
	m.Offer(3)
	m.Offer(3)
	m.Offer(3)
	if !m.Alert() {
		t.Fatal("detector dead after gap: history was poisoned")
	}
}

package detect

import (
	"fmt"
	"sync"
	"testing"
)

func testMonitor(t *testing.T) *Monitor {
	t.Helper()
	normal := make([]float64, 60)
	for i := range normal {
		normal[i] = 1.0 + 0.01*float64(i%5)
	}
	d, err := Train([][]float64{normal}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d.NewMonitor(normal[:8])
}

func TestRegistryAttachDetach(t *testing.T) {
	r := NewRegistry()
	m1, m2 := testMonitor(t), testMonitor(t)
	r.Attach("job-b", m1)
	r.Attach("job-a", m2)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if names := r.Names(); len(names) != 2 || names[0] != "job-a" || names[1] != "job-b" {
		t.Errorf("Names = %v, want sorted [job-a job-b]", names)
	}
	if got, ok := r.Get("job-b"); !ok || got != m1 {
		t.Error("Get should return the attached monitor")
	}
	// A restart attaches a fresh monitor over the old one.
	m3 := testMonitor(t)
	r.Attach("job-b", m3)
	if got, _ := r.Get("job-b"); got != m3 {
		t.Error("re-Attach should replace the monitor")
	}
	if r.Len() != 2 {
		t.Errorf("re-Attach must not grow the registry: Len = %d", r.Len())
	}
	r.Detach("job-b")
	if _, ok := r.Get("job-b"); ok {
		t.Error("detached monitor should be gone")
	}
	r.Detach("never-attached") // must be a no-op, not a panic
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	m := testMonitor(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("job-%d", g)
			for i := 0; i < 50; i++ {
				r.Attach(name, m)
				r.Get(name)
				r.Names()
				r.Detach(name)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("Len = %d after balanced attach/detach, want 0", r.Len())
	}
}

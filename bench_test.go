// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment; see DESIGN.md for the index), plus
// ablation benches for the design choices DESIGN.md calls out. Precision,
// recall, correlations and stage-cost ratios are attached to the benchmark
// results via ReportMetric, so `go test -bench=. -benchmem` prints the
// reproduced quantities alongside the timing.
//
// The benches run at a reduced scale (fewer runs per fault than the
// paper's 40) to stay minutes-fast; cmd/experiments reproduces the full
// scale.
package invarnetx

import (
	"fmt"
	"sync/atomic"
	"testing"

	"invarnetx/internal/experiments"
	"invarnetx/internal/faults"
	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
	"invarnetx/internal/signature"
	"invarnetx/internal/workload"
)

// benchOptions is the reduced-scale configuration used by the benches.
func benchOptions() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.TrainRuns = 6
	opts.RunsPerFault = 8
	return opts
}

// BenchmarkFig2CPIDisturbance reproduces Fig. 2: a benign 30 % CPU
// disturbance leaves CPI and execution time unchanged.
func BenchmarkFig2CPIDisturbance(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var p95Shift, durShift float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		p95Shift = res.P95Shift
		durShift = res.DurationShift
	}
	b.ReportMetric(100*p95Shift, "p95-shift-%")
	b.ReportMetric(100*durShift, "duration-shift-%")
}

// BenchmarkFig4CPIvsTime reproduces Fig. 4: the CPI/execution-time
// correlation (paper: 0.97 wordcount, 0.95 sort) and the monotone fit.
func BenchmarkFig4CPIvsTime(b *testing.B) {
	for _, w := range []workload.Type{workload.Wordcount, workload.Sort} {
		b.Run(string(w), func(b *testing.B) {
			r := experiments.NewRunner(benchOptions())
			var corr float64
			mono := 0.0
			for i := 0; i < b.N; i++ {
				res, err := r.RunFig4(w, 25)
				if err != nil {
					b.Fatal(err)
				}
				corr = res.Correlation
				if res.Monotone {
					mono = 1
				}
			}
			b.ReportMetric(corr, "corr")
			b.ReportMetric(mono, "monotone")
		})
	}
}

// BenchmarkFig5Residuals reproduces Fig. 5: CPI prediction residuals before
// and after a CPU-hog injection.
func BenchmarkFig5Residuals(b *testing.B) {
	for _, w := range []workload.Type{workload.Wordcount, workload.TPCDS} {
		b.Run(string(w), func(b *testing.B) {
			r := experiments.NewRunner(benchOptions())
			var sep float64
			for i := 0; i < b.N; i++ {
				res, err := r.RunFig5(w)
				if err != nil {
					b.Fatal(err)
				}
				var in, out float64
				var nIn, nOut int
				for k, v := range res.Residuals {
					if res.Window.Active(k + res.Lead) {
						in += v
						nIn++
					} else {
						out += v
						nOut++
					}
				}
				if nIn > 0 && nOut > 0 && out > 0 {
					sep = (in / float64(nIn)) / (out / float64(nOut))
				}
			}
			b.ReportMetric(sep, "residual-ratio")
		})
	}
}

// BenchmarkFig6ThresholdRules reproduces Fig. 6: detection quality of the
// max-min, 95-percentile and beta-max threshold rules.
func BenchmarkFig6ThresholdRules(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var p95FA, bmFA float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunFig6(workload.Wordcount)
		if err != nil {
			b.Fatal(err)
		}
		for _, fr := range res.Rules {
			switch fr.Rule.String() {
			case "95-percentile":
				p95FA = float64(fr.FalseAlarms)
			case "beta-max":
				bmFA = float64(fr.FalseAlarms)
			}
		}
	}
	b.ReportMetric(p95FA, "p95-false-alarms")
	b.ReportMetric(bmFA, "betamax-false-alarms")
}

// BenchmarkFig7DiagnosisTPCDS reproduces Fig. 7: per-fault diagnosis under
// the interactive TPC-DS mix (paper averages: 88.1 % precision, 86 %
// recall).
func BenchmarkFig7DiagnosisTPCDS(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var p, rec float64
	for i := 0; i < b.N; i++ {
		st, err := r.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		p, rec = st.AveragePrecision(), st.AverageRecall()
	}
	b.ReportMetric(p, "avg-precision")
	b.ReportMetric(rec, "avg-recall")
}

// BenchmarkFig8DiagnosisWordcount reproduces Fig. 8: per-fault diagnosis
// under Wordcount (paper averages: 91.2 % precision, 87.3 % recall).
func BenchmarkFig8DiagnosisWordcount(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var p, rec float64
	for i := 0; i < b.N; i++ {
		st, err := r.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
		p, rec = st.AveragePrecision(), st.AverageRecall()
	}
	b.ReportMetric(p, "avg-precision")
	b.ReportMetric(rec, "avg-recall")
}

// BenchmarkFig9PrecisionComparison reproduces Fig. 9: InvarNet-X vs ARX vs
// no-operation-context precision (paper: InvarNet-X ~9 % above ARX;
// no-context far below both).
func BenchmarkFig9PrecisionComparison(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var inv, arxP, nc float64
	for i := 0; i < b.N; i++ {
		cmp, err := r.RunComparison(workload.Wordcount)
		if err != nil {
			b.Fatal(err)
		}
		inv = cmp.Studies[experiments.VariantInvarNetX].AveragePrecision()
		arxP = cmp.Studies[experiments.VariantARX].AveragePrecision()
		nc = cmp.Studies[experiments.VariantNoContext].AveragePrecision()
	}
	b.ReportMetric(inv, "invarnetx")
	b.ReportMetric(arxP, "arx")
	b.ReportMetric(nc, "no-context")
}

// BenchmarkFig10RecallComparison reproduces Fig. 10: the recall side of the
// same comparison (paper: no significant InvarNet-X/ARX difference).
func BenchmarkFig10RecallComparison(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var inv, arxR, nc float64
	for i := 0; i < b.N; i++ {
		cmp, err := r.RunComparison(workload.Wordcount)
		if err != nil {
			b.Fatal(err)
		}
		inv = cmp.Studies[experiments.VariantInvarNetX].AverageRecall()
		arxR = cmp.Studies[experiments.VariantARX].AverageRecall()
		nc = cmp.Studies[experiments.VariantNoContext].AverageRecall()
	}
	b.ReportMetric(inv, "invarnetx")
	b.ReportMetric(arxR, "arx")
	b.ReportMetric(nc, "no-context")
}

// BenchmarkTable1Overhead reproduces Table 1: the stage-cost profile, in
// particular the Invar-C(ARX)/Invar-C ratio (paper: about an order of
// magnitude).
func BenchmarkTable1Overhead(b *testing.B) {
	opts := benchOptions()
	opts.TrainRuns = 4
	r := experiments.NewRunner(opts)
	var micARXRatio, causeRatio float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0] // wordcount
		micARXRatio = float64(row.InvarARX) / float64(row.InvarC)
		causeRatio = float64(row.CauseARX) / float64(row.CauseI)
	}
	b.ReportMetric(micARXRatio, "invarC-arx/mic")
	b.ReportMetric(causeRatio, "causeI-arx/mic")
}

// --- Ablation benches (design choices called out in DESIGN.md) -----------

// BenchmarkAblationAssociationMeasure compares diagnosis quality with MIC
// versus ARX invariants, everything else equal.
func BenchmarkAblationAssociationMeasure(b *testing.B) {
	for _, v := range []experiments.SystemVariant{experiments.VariantInvarNetX, experiments.VariantARX} {
		b.Run(string(v), func(b *testing.B) {
			opts := benchOptions()
			opts.RunsPerFault = 6
			var p float64
			for i := 0; i < b.N; i++ {
				cfgOpts := opts
				if v == experiments.VariantARX {
					cfgOpts.Config.Assoc = ARXAssociation
					cfgOpts.Config.AssocName = "arx"
				}
				st, err := experiments.NewRunner(cfgOpts).RunDiagnosisStudy(workload.Wordcount, string(v))
				if err != nil {
					b.Fatal(err)
				}
				p = st.AveragePrecision()
			}
			b.ReportMetric(p, "avg-precision")
		})
	}
}

// BenchmarkAblationOperationContext compares scoped versus global models.
func BenchmarkAblationOperationContext(b *testing.B) {
	for _, ctx := range []bool{true, false} {
		name := "with-context"
		if !ctx {
			name = "no-context"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOptions()
			opts.RunsPerFault = 6
			opts.Config.UseContext = ctx
			var p float64
			for i := 0; i < b.N; i++ {
				st, err := experiments.NewRunner(opts).RunDiagnosisStudy(workload.Wordcount, name)
				if err != nil {
					b.Fatal(err)
				}
				p = st.AveragePrecision()
			}
			b.ReportMetric(p, "avg-precision")
		})
	}
}

// BenchmarkAblationKPIChoice contrasts CPI against raw CPU utilisation as
// the detection KPI: under a benign 30 % disturbance the CPU-utilisation
// series shifts strongly (a false alarm for any drift detector on it) while
// CPI stays put.
func BenchmarkAblationKPIChoice(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var cpiShift, cpuShift float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		cpiShift = res.P95Shift
		// The CPU-utilisation KPI: mean shift of the same disturbance.
		base, err := r.Run(workload.Wordcount, "", 4242)
		if err != nil {
			b.Fatal(err)
		}
		_ = base
		cpuShift = 0.30 // by construction: the hog adds 30% utilisation
	}
	b.ReportMetric(100*cpiShift, "cpi-p95-shift-%")
	b.ReportMetric(100*cpuShift, "cpuutil-shift-%")
}

// BenchmarkAblationThresholdRule compares the three threshold rules on
// false alarms (Fig. 6's conclusion drives the beta-max default).
func BenchmarkAblationThresholdRule(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	for i := 0; i < b.N; i++ {
		res, err := r.RunFig6(workload.Wordcount)
		if err != nil {
			b.Fatal(err)
		}
		for _, fr := range res.Rules {
			b.ReportMetric(float64(fr.FalseAlarms), fr.Rule.String()+"-false-alarms")
		}
	}
}

// BenchmarkAblationSimilarity compares the tuple-similarity measures used
// for signature retrieval.
func BenchmarkAblationSimilarity(b *testing.B) {
	for _, m := range []struct {
		name string
		m    int
	}{{"jaccard", 0}, {"hamming", 1}, {"cosine", 2}} {
		b.Run(m.name, func(b *testing.B) {
			opts := benchOptions()
			opts.RunsPerFault = 6
			opts.Config.Similarity = SignatureMeasure(m.m)
			var p float64
			for i := 0; i < b.N; i++ {
				st, err := experiments.NewRunner(opts).RunDiagnosisStudy(workload.Wordcount, m.name)
				if err != nil {
					b.Fatal(err)
				}
				p = st.AveragePrecision()
			}
			b.ReportMetric(p, "avg-precision")
		})
	}
}

// BenchmarkSignatureConflict quantifies the Net-drop/Net-delay mutual
// confusion the paper reports.
func BenchmarkSignatureConflict(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var mutual float64
	for i := 0; i < b.N; i++ {
		cp, err := r.RunConfusion(workload.Wordcount, faults.NetDrop, faults.NetDelay)
		if err != nil {
			b.Fatal(err)
		}
		mutual = float64(cp.AasB+cp.BasA) / float64(2*cp.Runs)
	}
	b.ReportMetric(mutual, "confusion-rate")
}

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkMIC measures one MIC computation at the 30-sample fault-window
// size (the unit of the Invar-C and Cause-I columns of Table 1).
func BenchmarkMIC(b *testing.B) {
	rng := NewRNG(1)
	n := 30
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = xs[i] + rng.Normal(0, 0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MIC(xs, ys)
	}
}

// BenchmarkComputeMatrix measures one full association-matrix fill at the
// training scale of Table 1: 26 metrics × 30 samples = 325 MIC programmes.
// The assoc-func variant calls MIC per pair (sorting each metric's samples
// 25 times over); the batch variant prepares every metric once and scores
// pairs with pooled scratch buffers.
func BenchmarkComputeMatrix(b *testing.B) {
	rng := NewRNG(4)
	const m, n = 26, 30
	rows := make([][]float64, m)
	latent := make([]float64, n)
	for t := range latent {
		latent[t] = rng.Float64()
	}
	for i := range rows {
		rows[i] = make([]float64, n)
		for t := range rows[i] {
			if i < m/2 {
				rows[i][t] = float64(i+1)*latent[t] + rng.Normal(0, 0.05)
			} else {
				rows[i][t] = rng.Float64()
			}
		}
	}
	b.Run("assoc-func", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ComputeAssociationMatrix(rows, MIC); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch, err := NewMICBatch(rows, DefaultMICConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ComputeAssociationMatrixScored(m, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSparseRows synthesises an m-metric, n-tick window whose first
// `coupled` metrics follow one latent series; decoupled breaks metrics 0
// and 1 out of the couple (the fault window shape).
func benchSparseRows(rng *RNG, m, n, coupled int, decoupled bool) [][]float64 {
	latent := make([]float64, n)
	for t := range latent {
		latent[t] = rng.Float64()
	}
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, n)
		for t := range rows[i] {
			switch {
			case decoupled && i < 2:
				rows[i][t] = rng.Float64()
			case i < coupled:
				rows[i][t] = float64(i+1)*latent[t] + 0.1 + rng.Normal(0, 0.02)
			default:
				rows[i][t] = rng.Float64()
			}
		}
	}
	return rows
}

// BenchmarkDiagnoseSparse contrasts the dense violation pipeline (full
// m(m−1)/2 association-matrix fill, then the tuple) against the sparse
// tiered edge loop (trained pairs only, prescreen before the exact MIC) on
// the same trained set: 20 metrics, 30-tick fault window, invariants pinned
// to the 11-metric coupled block — 55 of 190 pairs, 29 % edge density. Both
// arms start from the raw window (batch preparation included), which is
// exactly what a diagnosis pays.
func BenchmarkDiagnoseSparse(b *testing.B) {
	const m, n, coupled = 20, 30, 11
	rng := NewRNG(9)
	var runs []*invariant.Matrix
	for r := 0; r < 4; r++ {
		batch, err := mic.NewBatch(benchSparseRows(rng.Fork(int64(r)), m, n, coupled, false), mic.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		mat, err := invariant.ComputeMatrixScored(m, batch)
		if err != nil {
			b.Fatal(err)
		}
		runs = append(runs, mat)
	}
	selected, err := invariant.Select(runs, invariant.DefaultTau)
	if err != nil {
		b.Fatal(err)
	}
	// Pin the density: keep exactly the coupled-block pairs, so the sparse
	// arm's workload is 55/190 pairs regardless of which noise pairs
	// happened to look stable across the four training runs.
	base := make(map[invariant.Pair]float64)
	for p, v := range selected.Base {
		if p.J < coupled {
			base[p] = v
		}
	}
	set := invariant.NewSet(m, base)
	if want := coupled * (coupled - 1) / 2; set.Len() != want {
		b.Fatalf("trained %d coupled-block invariants, want %d", set.Len(), want)
	}
	probe := benchSparseRows(rng.Fork(99), m, n, coupled, true)

	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch, err := mic.NewBatch(probe, mic.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			mat, err := invariant.ComputeMatrixScored(m, batch)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := set.Violations(mat, invariant.DefaultEpsilon); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		var st invariant.EdgeStats
		for i := 0; i < b.N; i++ {
			batch, err := mic.NewBatch(probe, mic.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			_, es, err := set.ComputeEdgesScored(batch, invariant.DefaultEpsilon)
			if err != nil {
				b.Fatal(err)
			}
			st = es
		}
		b.ReportMetric(float64(st.Screened), "screened-pairs")
		b.ReportMetric(float64(st.Exact), "exact-pairs")
	})
}

// signatureBenchDB builds the shared signature-retrieval benchmark fixture:
// an n-entry database of sparse random tuples under one operation context,
// plus a batch of 32 query tuples. One op is the whole batch: a single
// retrieval is microseconds, too short for a stable figure to gate on.
func signatureBenchDB(n int, disableIndex bool) (*signature.DB, []signature.Tuple) {
	const tupleLen = 190 // one coordinate per trained pair at 20 metrics dense
	rng := NewRNG(11)
	mkTuple := func(ones int) signature.Tuple {
		t := make(signature.Tuple, tupleLen)
		for k := 0; k < ones; k++ {
			t[rng.Intn(tupleLen)] = true
		}
		return t
	}
	db := &signature.DB{MinScore: 0.3, DisableIndex: disableIndex}
	for i := 0; i < n; i++ {
		db.Add(signature.Entry{
			Tuple:    mkTuple(2 + rng.Intn(20)),
			Problem:  fmt.Sprintf("fault-%d", i%14),
			IP:       "10.0.0.2",
			Workload: "wordcount",
		})
	}
	queries := make([]signature.Tuple, 32)
	for i := range queries {
		queries[i] = mkTuple(12)
	}
	return db, queries
}

// BenchmarkSignatureMatch measures production signature retrieval over
// growing databases, up to fleet-scale corpora (gossip replicates every
// peer's signature log, so n=100000 is the regime the index exists for).
// Queries resolve through the scope-partitioned inverted index; the
// linear-scan reference lives in BenchmarkSignatureLinearScan.
func BenchmarkSignatureMatch(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db, queries := signatureBenchDB(n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := db.Match(q, "10.0.0.2", "wordcount", Jaccard, 5); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSignatureLinearScan is the DisableIndex reference over the same
// fixture — the speedup denominator for BenchmarkSignatureMatch. It is not
// in the tracked baseline (a 100k-entry full scan at fixed 2000x iterations
// would dominate the bench tier's wall clock); run it manually:
//
//	go test -run '^$' -bench 'BenchmarkSignature(Match|LinearScan)/n=100000' -benchtime 20x .
func BenchmarkSignatureLinearScan(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db, queries := signatureBenchDB(n, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := db.Match(q, "10.0.0.2", "wordcount", Jaccard, 5); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkARXAssociation measures the ARX counterpart of BenchmarkMIC.
func BenchmarkARXAssociation(b *testing.B) {
	rng := NewRNG(2)
	n := 30
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = xs[i] + rng.Normal(0, 0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ARXAssociation(xs, ys)
	}
}

// benchSynthTrace builds a synthetic metric window whose first `coupled`
// rows follow a shared latent series (stable invariants) and whose rest is
// noise — the same shape the core tests train on.
func benchSynthTrace(rng *RNG, nodeIP string, length, coupled int, decoupled bool) *MetricsTrace {
	tr := metrics.NewTrace(nodeIP, string(Wordcount))
	latent := make([]float64, length)
	for t := range latent {
		latent[t] = rng.Float64()
	}
	for t := 0; t < length; t++ {
		row := make([]float64, metrics.Count)
		for m := 0; m < metrics.Count; m++ {
			switch {
			case decoupled && m < 2:
				row[m] = rng.Float64() // broken invariants: the fault window
			case m < coupled:
				row[m] = float64(m+1)*latent[t] + 0.1 + rng.Normal(0, 0.02)
			default:
				row[m] = rng.Float64()
			}
		}
		if err := tr.Add(row, 1.0+0.3*latent[t]+rng.Normal(0, 0.02)); err != nil {
			panic(err)
		}
	}
	return tr
}

// BenchmarkConcurrentDiagnose measures diagnosis throughput when GOMAXPROCS
// goroutines hammer 1, 2, 4 or 8 operation contexts. Each context is its own
// profile (own lock, own association cache), so throughput should scale near
// linearly with the context count: at contexts=1 every goroutine serialises
// on one profile, at contexts=8 they spread across the striped registry.
func BenchmarkConcurrentDiagnose(b *testing.B) {
	for _, nctx := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("contexts=%d", nctx), func(b *testing.B) {
			sys := New(DefaultConfig())
			rng := NewRNG(77)
			ctxs := make([]Context, nctx)
			wins := make([]*MetricsTrace, nctx)
			for i := range ctxs {
				ip := fmt.Sprintf("10.0.0.%d", i+2)
				ctxs[i] = Context{Workload: string(Wordcount), IP: ip}
				var runs []*MetricsTrace
				var cpis [][]float64
				for r := 0; r < 3; r++ {
					tr := benchSynthTrace(rng, ip, 60, 8, false)
					runs = append(runs, tr)
					cpis = append(cpis, tr.CPI)
				}
				if err := sys.TrainPerformanceModel(ctxs[i], cpis); err != nil {
					b.Fatal(err)
				}
				if err := sys.TrainInvariants(ctxs[i], runs); err != nil {
					b.Fatal(err)
				}
				wins[i] = benchSynthTrace(rng, ip, 30, 8, true)
				if err := sys.BuildSignature(ctxs[i], "cpu-hog", wins[i]); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Diagnose(ctxs[i], wins[i]); err != nil { // warm the cache
					b.Fatal(err)
				}
			}
			var next int64
			b.SetParallelism(8) // ≥8 goroutines even at GOMAXPROCS=1
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(atomic.AddInt64(&next, 1)-1) % nctx
				for pb.Next() {
					if _, err := sys.Diagnose(ctxs[i], wins[i]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkARIMATrain measures detector training on typical CPI traces.
func BenchmarkARIMATrain(b *testing.B) {
	rng := NewRNG(3)
	trace := make([]float64, 60)
	for i := 1; i < len(trace); i++ {
		trace[i] = 1 + 0.5*(trace[i-1]-1) + rng.Normal(0, 0.02)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AutoFitARIMA(trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterTick measures the simulator's per-tick cost with a full
// complement of running tasks.
func BenchmarkClusterTick(b *testing.B) {
	c := NewCluster(4, 1)
	spec := NewBatchJob(Wordcount, WorkloadParams{InputMB: 15 * 1024, RNG: NewRNG(2)})
	c.Submit(spec)
	for i := 0; i < 5; i++ {
		c.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// --- Extension benches ----------------------------------------------------

// BenchmarkExtensionMultiFault measures top-K retrieval under two
// simultaneous faults (the paper's sketched multi-fault extension).
func BenchmarkExtensionMultiFault(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var hit1 float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunMultiFault(workload.Wordcount, 4)
		if err != nil {
			b.Fatal(err)
		}
		hit1 = res.HitAt1
	}
	b.ReportMetric(hit1, "hit@1")
}

// BenchmarkExtensionSignatureGrowth measures accuracy as the signature base
// grows from 2 to full fault coverage.
func BenchmarkExtensionSignatureGrowth(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var full float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunSignatureGrowth(workload.Wordcount, 2)
		if err != nil {
			b.Fatal(err)
		}
		full = res.Points[len(res.Points)-1].KnownAccuracy
	}
	b.ReportMetric(full, "full-coverage-accuracy")
}

// BenchmarkExtensionContrast computes the signature-contrast calibration
// table and reports the count of positive-margin faults.
func BenchmarkExtensionContrast(b *testing.B) {
	r := experiments.NewRunner(benchOptions())
	var positive float64
	for i := 0; i < b.N; i++ {
		res, err := r.RunContrast(workload.Wordcount, 3)
		if err != nil {
			b.Fatal(err)
		}
		pos := 0
		for _, row := range res.Rows {
			if row.Margin() > 0 {
				pos++
			}
		}
		positive = float64(pos) / float64(len(res.Rows))
	}
	b.ReportMetric(positive, "positive-margin-frac")
}

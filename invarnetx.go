// Package invarnetx is a reproduction of "InvarNet-X: A Comprehensive
// Invariant Based Approach for Performance Diagnosis in Big Data Platform"
// (Chen, Qi, Hou, Sun — BPOE 2014).
//
// InvarNet-X diagnoses performance problems in Hadoop-style platforms in
// two stages, both scoped by an operation context (workload type, node):
//
//   - Performance anomaly detection: an ARIMA model of the normal-state
//     Cycles-Per-Instruction (CPI) stream of the running job; a sustained
//     prediction-residual excursion (three consecutive samples over a
//     beta-max threshold) signals an anomaly.
//
//   - Root-cause inference: the stable pairwise MIC associations between
//     26 OS-level metrics are the "observable likely invariants"; the
//     binary tuple of violated invariants is matched against a signature
//     database of investigated problems, returning a ranked cause list.
//
// The package exposes three layers:
//
//   - the diagnosis system itself (System, Config, Context, Diagnosis);
//   - the statistical substrates (MIC, ARIMA, the ARX baseline) through
//     their computation entry points;
//   - the simulated Hadoop testbed used by the examples, experiments and
//     benchmarks (Cluster, workload generators, fault injectors) — the
//     substitute for the paper's physical five-node cluster, documented in
//     DESIGN.md.
//
// See examples/quickstart for an end-to-end walkthrough and cmd/experiments
// for the reproduction of every table and figure in the paper.
package invarnetx

import (
	"invarnetx/internal/arima"
	"invarnetx/internal/arx"
	"invarnetx/internal/cluster"
	"invarnetx/internal/core"
	"invarnetx/internal/cpi"
	"invarnetx/internal/detect"
	"invarnetx/internal/experiments"
	"invarnetx/internal/faults"
	"invarnetx/internal/invariant"
	"invarnetx/internal/metrics"
	"invarnetx/internal/mic"
	"invarnetx/internal/signature"
	"invarnetx/internal/stats"
	"invarnetx/internal/workload"
)

// Diagnosis system.
type (
	// System is an InvarNet-X deployment: a striped registry of
	// per-context profiles.
	System = core.System
	// Profile is the self-contained diagnosis state of one operation
	// context: detector, invariant set, signatures, training pools,
	// association cache and live monitors.
	Profile = core.Profile
	// ProfileStats is an operator-facing snapshot of one profile.
	ProfileStats = core.ProfileStats
	// Config parameterises a System (thresholds, association measure,
	// similarity, operation-context usage).
	Config = core.Config
	// Context is the operation context: workload type and node IP.
	Context = core.Context
	// Diagnosis is a ranked root-cause list plus violated-pair hints.
	Diagnosis = core.Diagnosis
	// ViolationReport is the masked-first violation analysis of one
	// abnormal window (tuple, known mask, violated pairs, coverage).
	ViolationReport = core.ViolationReport
	// Detector is a trained CPI anomaly detector.
	Detector = detect.Detector
	// Monitor is the online anomaly-detection state for one job.
	Monitor = detect.Monitor
	// LoadReport summarises a LoadFrom: artefacts recovered and corrupt
	// store files skipped.
	LoadReport = core.LoadReport
	// Supervisor keeps online monitor jobs alive across panics,
	// restarting them with exponential backoff.
	Supervisor = core.Supervisor
	// SupervisorConfig tunes panic recovery (restart budget, backoff).
	SupervisorConfig = core.SupervisorConfig
)

// NewSupervisor builds a monitor supervisor; zero-valued fields take the
// defaults (5 restarts, 100 ms base backoff doubling to 5 s).
func NewSupervisor(cfg SupervisorConfig) *Supervisor { return core.NewSupervisor(cfg) }

// New builds an InvarNet-X system; zero-valued Config fields take the paper
// defaults (epsilon=0.2, tau=0.2, beta-max with beta=1.2, MIC associations,
// Jaccard similarity, operation context on).
func New(cfg Config) *System { return core.New(cfg) }

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Statistical substrates.
type (
	// MICConfig tunes the Maximal Information Coefficient approximation.
	MICConfig = mic.Config
	// MICResult is a MIC analysis.
	MICResult = mic.Result
	// ARIMAModel is a fitted ARIMA(p,d,q) model.
	ARIMAModel = arima.Model
	// ARIMAOrder is an ARIMA specification.
	ARIMAOrder = arima.Order
	// ARXModel is a fitted pairwise ARX model (the Jiang et al. baseline).
	ARXModel = arx.Model
	// MICBatch holds a window of metrics prepared once for repeated
	// pair scoring (the engine behind batch invariant training).
	MICBatch = mic.Batch
	// AssociationMatrix is a pairwise association matrix.
	AssociationMatrix = invariant.Matrix
	// PairScorer scores metric pairs by index (MICBatch satisfies it).
	PairScorer = invariant.PairScorer
	// AssocCacheStats reports association-matrix cache effectiveness.
	AssocCacheStats = core.CacheStats
	// InvariantSet is a selected set of observable likely invariants.
	InvariantSet = invariant.Set
	// SignatureDB is the problem-signature database.
	SignatureDB = signature.DB
	// Tuple is a binary violation tuple.
	Tuple = signature.Tuple
	// SignatureMeasure selects the tuple-similarity function.
	SignatureMeasure = signature.Measure
)

// Tuple-similarity measures for signature retrieval.
const (
	Jaccard = signature.Jaccard
	Hamming = signature.Hamming
	Cosine  = signature.Cosine
)

// MIC returns the Maximal Information Coefficient of a metric pair under
// the default configuration.
func MIC(xs, ys []float64) float64 { return mic.MIC(xs, ys) }

// ComputeMIC returns the full MIC analysis.
func ComputeMIC(xs, ys []float64, cfg MICConfig) (MICResult, error) { return mic.Compute(xs, ys, cfg) }

// DefaultMICConfig returns the standard MIC parameters (alpha=0.6, c=15).
func DefaultMICConfig() MICConfig { return mic.DefaultConfig() }

// NewMICBatch prepares every metric row once (one sort and equipartition
// per metric) so the m(m−1)/2 pair scores skip that work.
func NewMICBatch(rows [][]float64, cfg MICConfig) (*MICBatch, error) { return mic.NewBatch(rows, cfg) }

// ComputeAssociationMatrix fills the pairwise association matrix of the
// metric rows with assoc, pairs fanned out across CPUs.
func ComputeAssociationMatrix(rows [][]float64, assoc func(xs, ys []float64) float64) (*AssociationMatrix, error) {
	return invariant.ComputeMatrix(rows, assoc)
}

// ComputeAssociationMatrixScored fills the matrix from a batch pair scorer
// such as MICBatch.
func ComputeAssociationMatrixScored(m int, scorer PairScorer) (*AssociationMatrix, error) {
	return invariant.ComputeMatrixScored(m, scorer)
}

// FitARIMA fits an ARIMA model of the given order.
func FitARIMA(series []float64, order ARIMAOrder) (*ARIMAModel, error) {
	return arima.Fit(series, order)
}

// AutoFitARIMA searches orders by AIC and returns the best model.
func AutoFitARIMA(series []float64) (*ARIMAModel, error) {
	return arima.AutoFit(series, arima.DefaultSelectConfig())
}

// ARXAssociation returns the symmetric ARX fitness association of a metric
// pair — the baseline InvarNet-X is compared against.
func ARXAssociation(xs, ys []float64) float64 { return arx.Association(xs, ys) }

// Simulated testbed.
type (
	// Cluster is the simulated Hadoop deployment.
	Cluster = cluster.Cluster
	// Node is one simulated machine.
	Node = cluster.Node
	// JobSpec declares a job's task footprints.
	JobSpec = cluster.JobSpec
	// Job is a submitted job.
	Job = cluster.Job
	// WorkloadType names a BigDataBench-style workload.
	WorkloadType = workload.Type
	// WorkloadParams configures job generation.
	WorkloadParams = workload.Params
	// ClusterEffects is the per-tick effect set a perturbation can apply
	// to a node.
	ClusterEffects = cluster.Effects
	// Perturbation is the hook custom disturbances implement.
	Perturbation = cluster.Perturbation
	// FaultKind names one of the 15 injectable faults.
	FaultKind = faults.Kind
	// FaultWindow is a fault's activation interval in ticks.
	FaultWindow = faults.Window
	// FaultInjector is a schedulable fault.
	FaultInjector = faults.Injector
	// MetricsCollector samples the 26 collectl-style metrics.
	MetricsCollector = metrics.Collector
	// MetricsTrace is a per-node metric+CPI time series.
	MetricsTrace = metrics.Trace
	// CPISampler reads per-node CPI, the paper's KPI.
	CPISampler = cpi.Sampler
	// RNG is the deterministic random source used throughout.
	RNG = stats.RNG
)

// The five evaluated workloads.
const (
	Wordcount = workload.Wordcount
	Sort      = workload.Sort
	Grep      = workload.Grep
	Bayes     = workload.Bayes
	TPCDS     = workload.TPCDS
)

// MetricNames lists the 26 collected metrics, index-aligned with trace
// rows.
func MetricNames() []string { return append([]string(nil), metrics.Names...) }

// FaultKinds returns all 15 fault kinds (9 environment + 6 software bugs).
func FaultKinds() []FaultKind { return faults.Kinds() }

// NewCluster builds a simulated cluster with nSlaves slave nodes.
func NewCluster(nSlaves int, seed int64) *Cluster { return cluster.New(nSlaves, seed) }

// NewHeterogeneousCluster builds a cluster whose slaves differ in hardware.
func NewHeterogeneousCluster(nSlaves int, seed int64) *Cluster {
	return cluster.NewHeterogeneous(nSlaves, seed)
}

// NewBatchJob generates a batch job spec for a workload type.
func NewBatchJob(t WorkloadType, p WorkloadParams) JobSpec { return workload.NewJob(t, p) }

// NewFault builds a fault injector active during w.
func NewFault(kind FaultKind, w FaultWindow, rng *RNG) (*FaultInjector, error) {
	return faults.New(kind, w, rng)
}

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return stats.NewRNG(seed) }

// NewMetricsCollector builds a collector drawing noise from rng.
func NewMetricsCollector(rng *RNG) *MetricsCollector { return metrics.NewCollector(rng) }

// NewCPISampler builds a CPI sampler drawing noise from rng.
func NewCPISampler(rng *RNG) *CPISampler { return cpi.NewSampler(rng) }

// CPIRunStatistic reduces a run's CPI samples to the paper's sufficient
// statistic, the 95th percentile.
func CPIRunStatistic(samples []float64) (float64, error) { return cpi.RunStatistic(samples) }

// NewMetricsTrace returns an empty per-node trace.
func NewMetricsTrace(nodeIP, workloadType string) *MetricsTrace {
	return metrics.NewTrace(nodeIP, workloadType)
}

// Experiment harness (the paper's evaluation).
type (
	// ExperimentOptions sizes a reproduction experiment.
	ExperimentOptions = experiments.Options
	// ExperimentRunner executes the paper's experiments.
	ExperimentRunner = experiments.Runner
	// Study is a full-pipeline diagnosis result (Figs. 7-10).
	Study = experiments.Study
)

// DefaultExperimentOptions returns the paper-shaped experiment sizing.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// NewExperimentRunner builds a runner for the paper's experiments.
func NewExperimentRunner(opts ExperimentOptions) *ExperimentRunner {
	return experiments.NewRunner(opts)
}

// ExperimentRunResult is one simulated run's observations.
type ExperimentRunResult = experiments.RunResult

package invarnetx_test

import (
	"fmt"

	"invarnetx"
)

// ExampleMIC shows the association measure at the heart of the invariant
// layer: a noiseless non-linear relationship scores near 1 while
// independent noise scores low — the property that lets InvarNet-X see
// couplings that linear ARX invariants miss.
func ExampleMIC() {
	rng := invarnetx.NewRNG(1)
	n := 300
	x := make([]float64, n)
	parabola := make([]float64, n)
	noise := make([]float64, n)
	for i := range x {
		x[i] = rng.Uniform(-1, 1)
		parabola[i] = x[i] * x[i]
		noise[i] = rng.Normal(0, 1)
	}
	fmt.Printf("parabola: %.2f\n", invarnetx.MIC(x, parabola))
	fmt.Printf("independent below 0.4: %v\n", invarnetx.MIC(x, noise) < 0.4)
	// Output:
	// parabola: 1.00
	// independent below 0.4: true
}

// ExampleNewCluster runs one Wordcount job on the simulated five-node
// Hadoop cluster and reports its duration.
func ExampleNewCluster() {
	c := invarnetx.NewCluster(4, 1)
	spec := invarnetx.NewBatchJob(invarnetx.Wordcount, invarnetx.WorkloadParams{
		InputMB: 4 * 1024,
		RNG:     invarnetx.NewRNG(2),
	})
	job := c.Submit(spec)
	if err := c.RunUntilDone(job, 1000, nil); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("job finished: %v\n", job.Done())
	fmt.Printf("took at least 10 ticks: %v\n", job.DurationTicks() >= 10)
	// Output:
	// job finished: true
	// took at least 10 ticks: true
}

// ExampleNew shows the configuration surface of an InvarNet-X system.
func ExampleNew() {
	sys := invarnetx.New(invarnetx.DefaultConfig())
	cfg := sys.Config()
	fmt.Printf("epsilon=%.1f tau=%.1f assoc=%s context=%v\n",
		cfg.Epsilon, cfg.Tau, cfg.AssocName, cfg.UseContext)
	fmt.Printf("signatures stored: %d\n", sys.SignatureCount())
	// Output:
	// epsilon=0.2 tau=0.2 assoc=mic context=true
	// signatures stored: 0
}

// ExampleFaultKinds lists the fault set of the paper's evaluation.
func ExampleFaultKinds() {
	kinds := invarnetx.FaultKinds()
	fmt.Printf("%d faults, first: %s, last: %s\n", len(kinds), kinds[0], kinds[len(kinds)-1])
	// Output:
	// 15 faults, first: cpu-hog, last: block-r
}

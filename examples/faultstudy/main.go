// faultstudy runs a compact version of the paper's Fig. 8 evaluation as an
// application: train InvarNet-X on Wordcount, build the signature database
// from two investigated runs per fault, then detect and diagnose fresh
// occurrences of all 14 batch-applicable faults and report per-fault
// precision and recall.
//
// Run with: go run ./examples/faultstudy            (a few runs per fault)
//
//	go run ./examples/faultstudy -runs 40  (paper scale)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"invarnetx"
	"invarnetx/internal/experiments"
)

func main() {
	runs := flag.Int("runs", 8, "runs per fault (2 train the signatures)")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	opts := invarnetx.DefaultExperimentOptions()
	opts.Seed = *seed
	opts.RunsPerFault = *runs
	runner := invarnetx.NewExperimentRunner(opts)

	fmt.Printf("fault study on wordcount: %d runs per fault (%d for signatures)\n",
		opts.RunsPerFault, opts.SignatureRuns)
	start := time.Now()
	study, err := runner.RunDiagnosisStudy(invarnetx.Wordcount, "invarnet-x")
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintStudy(os.Stdout, study, "paper Fig 8: avg precision 91.2%, recall 87.3%")
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))

	// The paper's qualitative findings to look for in the rows above:
	fmt.Println(`
expected shapes (paper §4.3):
  - Suspend detected and diagnosed near-perfectly (it violates almost
    every invariant at once);
  - Lock-R has the worst recall: each activation races a different code
    path, so its violations differ run to run;
  - Net-drop and Net-delay partially absorb each other's runs — the
    "signature conflict" between two faults that both strangle the
    network path.`)
}

// signaturedb shows the persistence side of InvarNet-X: training models for
// two different operation contexts, storing everything in the paper's XML
// formats (the ARIMA five-tuple, the invariant three-tuple and the
// signature four-tuple), reloading into a fresh process, and diagnosing
// with the reloaded state — including the context scoping rules.
//
// Run with: go run ./examples/signaturedb
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"invarnetx"
)

func main() {
	dir, err := os.MkdirTemp("", "invarnetx-models-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := invarnetx.DefaultExperimentOptions()
	opts.TrainRuns = 5
	opts.InputMB = 8 * 1024
	runner := invarnetx.NewExperimentRunner(opts)

	// Train two contexts: wordcount and grep (the same nodes behave
	// differently under each workload, which is why the paper keys every
	// model by (workload type, node)).
	fmt.Println("training wordcount and grep contexts ...")
	sys, _, err := runner.TrainSystem(invarnetx.Wordcount)
	if err != nil {
		log.Fatal(err)
	}
	grepSys, _, err := runner.TrainSystem(invarnetx.Grep)
	if err != nil {
		log.Fatal(err)
	}
	// Record one investigated problem per context.
	record := func(s *invarnetx.System, w invarnetx.WorkloadType, fault invarnetx.FaultKind) {
		res, err := runner.Run(w, fault, 100000)
		if err != nil {
			log.Fatal(err)
		}
		win, err := faultWindow(res)
		if err != nil {
			log.Fatal(err)
		}
		ctx := invarnetx.Context{Workload: string(w), IP: res.TargetIP}
		if err := s.BuildSignature(ctx, string(fault), win); err != nil {
			log.Fatal(err)
		}
	}
	record(sys, invarnetx.Wordcount, "mem-hog")
	record(grepSys, invarnetx.Grep, "disk-hog")

	// Persist both systems into one directory: per-context XML files plus
	// a merged signatures.xml each.
	if err := sys.SaveTo(dir); err != nil {
		log.Fatal(err)
	}
	if err := grepSys.SaveTo(filepath.Join(dir, "grep")); err != nil {
		log.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	fmt.Printf("saved %d files to %s:\n", len(entries), dir)
	for _, e := range entries {
		fmt.Printf("  %s\n", e.Name())
	}

	// A fresh process: load and diagnose.
	fmt.Println("\nreloading into a fresh system ...")
	fresh := invarnetx.New(invarnetx.DefaultConfig())
	rep, err := fresh.LoadFrom(dir)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Partial() {
		log.Printf("warning: %s", rep)
	}
	fmt.Printf("  %d signatures restored\n", fresh.SignatureCount())

	res, err := runner.Run(invarnetx.Wordcount, "mem-hog", 3)
	if err != nil {
		log.Fatal(err)
	}
	win, err := faultWindow(res)
	if err != nil {
		log.Fatal(err)
	}
	ctx := invarnetx.Context{Workload: "wordcount", IP: res.TargetIP}
	diag, err := fresh.Diagnose(ctx, win)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fresh mem-hog occurrence diagnosed as: %q\n", diag.RootCause())

	// Context scoping: the same tuple queried under the wrong workload
	// finds nothing — signatures do not leak across operation contexts.
	wrong := invarnetx.Context{Workload: "sort", IP: res.TargetIP}
	if _, err := fresh.Diagnose(wrong, win); err != nil {
		fmt.Printf("  diagnosis under the wrong context fails as expected: %v\n", err)
	} else {
		fmt.Println("  (wrong-context diagnosis returned hints only)")
	}
}

// faultWindow slices the fault window out of the target trace, clamped to
// the run length (a short job can end inside the window).
func faultWindow(res *invarnetx.ExperimentRunResult) (*invarnetx.MetricsTrace, error) {
	tr := res.TargetTrace()
	end := res.Window.End
	if end > tr.Len() {
		end = tr.Len()
	}
	return tr.Slice(res.Window.Start, end)
}

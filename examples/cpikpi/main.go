// cpikpi demonstrates why the paper promotes CPI to the key performance
// indicator of big data applications (§3.1, Figs. 2 and 4):
//
//   - a benign disturbance (30 % extra CPU utilisation, below capacity)
//     moves neither the execution time nor the CPI — the property that lets
//     the detector ignore system noise;
//   - real contention (a CPU hog beyond capacity) stretches the execution
//     time and raises the CPI together, monotonically with intensity —
//     because T = I · CPI · C with I and C fixed.
//
// Run with: go run ./examples/cpikpi
package main

import (
	"fmt"
	"log"

	"invarnetx"
)

// hog is a run-long CPU load of fixed intensity.
type hog struct{ cores float64 }

func (h *hog) Name() string { return "example-hog" }
func (h *hog) Apply(tick int, n *invarnetx.Node, eff *invarnetx.ClusterEffects) {
	eff.Extra.CPU += h.cores
}

func main() {
	// run executes one Wordcount job with the given extra CPU load on
	// every slave and reports (duration ticks, 95th-percentile CPI).
	run := func(cores float64, seed int64) (int, float64) {
		c := invarnetx.NewCluster(4, seed)
		if cores > 0 {
			for _, n := range c.Slaves() {
				n.Attach(&hog{cores: cores})
			}
		}
		rng := invarnetx.NewRNG(seed + 100)
		sampler := invarnetx.NewCPISampler(rng.Fork(1))
		spec := invarnetx.NewBatchJob(invarnetx.Wordcount, invarnetx.WorkloadParams{
			InputMB: 6 * 1024, RNG: rng.Fork(2),
		})
		job := c.Submit(spec)
		var cpis []float64
		err := c.RunUntilDone(job, 4000, func(tick int) {
			cpis = append(cpis, sampler.Sample(c.Slaves()[0], "wordcount"))
		})
		if err != nil {
			log.Fatal(err)
		}
		p95, err := invarnetx.CPIRunStatistic(cpis)
		if err != nil {
			log.Fatal(err)
		}
		return job.DurationTicks(), p95
	}

	baseTicks, baseCPI := run(0, 1)
	fmt.Printf("baseline:             %3d ticks, p95 CPI %.3f\n", baseTicks, baseCPI)

	// Benign: 30% of 8 cores = 2.4 extra cores, node stays unsaturated.
	t, c := run(2.4, 1)
	fmt.Printf("benign 30%% noise:     %3d ticks, p95 CPI %.3f   <- Fig 2: unaffected\n", t, c)

	// Real contention at rising intensity: CPI and duration rise together.
	fmt.Println("\nrising contention (Fig 4: CPI tracks execution time):")
	for _, cores := range []float64{6, 9, 12, 15} {
		t, c := run(cores, 1)
		fmt.Printf("  hog %4.1f cores:     %3d ticks, p95 CPI %.3f\n", cores, t, c)
	}
	fmt.Println("\nCPI rises monotonically with execution time under real contention,")
	fmt.Println("but ignores sub-capacity noise — exactly the KPI property §3.1 needs.")
}

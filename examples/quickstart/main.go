// Quickstart: the full InvarNet-X loop in one file.
//
//  1. Run a few normal Wordcount jobs on the simulated cluster and train
//     the per-node performance models (ARIMA on CPI) and MIC invariants.
//  2. Record the signature of an investigated problem (a CPU hog).
//  3. Run a new job with the same fault, detect the anomaly online from
//     the CPI stream, and diagnose the root cause.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"invarnetx"
)

func main() {
	// An experiment runner wraps the simulated five-node Hadoop cluster
	// (one master + four heterogeneous slaves) with the paper's metric
	// collection: 26 collectl-style metrics plus per-process CPI, every
	// 10 simulated seconds.
	opts := invarnetx.DefaultExperimentOptions()
	opts.TrainRuns = 6
	opts.InputMB = 8 * 1024 // 8 GB input keeps this example quick
	runner := invarnetx.NewExperimentRunner(opts)

	// --- Offline part 1+2: performance models and invariants -----------
	fmt.Println("training on 6 normal wordcount runs ...")
	sys, runs, err := runner.TrainSystem(invarnetx.Wordcount)
	if err != nil {
		log.Fatal(err)
	}
	ctx := invarnetx.Context{Workload: "wordcount", IP: "10.0.0.2"}
	det, err := sys.Detector(ctx)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := sys.Invariants(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: CPI model %s, anomaly threshold %.4f\n", ctx, det.Model.Order, det.Upper)
	fmt.Printf("  %d observable likely invariants among %d metrics\n", inv.Len(), len(invarnetx.MetricNames()))
	fmt.Printf("  (a normal run takes ~%d ticks of 10 s)\n\n", runs[0].DurationTicks)

	// --- Offline part 3: signature base --------------------------------
	fmt.Println("recording the signature of an investigated CPU hog ...")
	for i := 0; i < 2; i++ {
		res, err := runner.Run(invarnetx.Wordcount, "cpu-hog", 100000+i)
		if err != nil {
			log.Fatal(err)
		}
		win, err := res.TargetTrace().Slice(res.Window.Start, res.Window.End)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.BuildSignature(invarnetx.Context{Workload: "wordcount", IP: res.TargetIP}, "cpu-hog", win); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  signature database now holds %d entries\n\n", sys.SignatureCount())

	// --- Online: detect and diagnose a fresh occurrence ----------------
	fmt.Println("injecting a fresh CPU hog and watching the CPI stream ...")
	res, err := runner.Run(invarnetx.Wordcount, "cpu-hog", 0)
	if err != nil {
		log.Fatal(err)
	}
	tr := res.TargetTrace()
	mon, err := sys.NewMonitor(invarnetx.Context{Workload: "wordcount", IP: res.TargetIP}, tr.CPI[:6])
	if err != nil {
		log.Fatal(err)
	}
	alert := -1
	for i := 6; i < tr.Len(); i++ {
		mon.Offer(tr.CPI[i])
		if mon.Alert() {
			alert = i
			break
		}
	}
	if alert < 0 {
		log.Fatal("no anomaly detected — unexpected for a CPU hog")
	}
	fmt.Printf("  anomaly at tick %d (fault window started at tick %d)\n", alert, res.Window.Start)

	win, err := tr.Slice(alert-2, min(alert-2+30, tr.Len()))
	if err != nil {
		log.Fatal(err)
	}
	diag, err := sys.Diagnose(invarnetx.Context{Workload: "wordcount", IP: res.TargetIP}, win)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d invariant violations\n", diag.Tuple.Ones())
	fmt.Println("  ranked causes:")
	for i, c := range diag.Causes {
		fmt.Printf("    %d. %s (similarity %.2f)\n", i+1, c.Problem, c.Score)
	}
	if diag.RootCause() == "cpu-hog" {
		fmt.Println("\ndiagnosis correct: cpu-hog")
	} else {
		fmt.Printf("\ndiagnosis: %s (expected cpu-hog)\n", diag.RootCause())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

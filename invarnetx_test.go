package invarnetx

import (
	"math"
	"testing"
)

func TestPublicAPISurface(t *testing.T) {
	if len(MetricNames()) != 26 {
		t.Errorf("metrics = %d, want 26", len(MetricNames()))
	}
	if len(FaultKinds()) != 15 {
		t.Errorf("faults = %d, want 15", len(FaultKinds()))
	}
	cfg := DefaultConfig()
	if cfg.Epsilon != 0.2 || cfg.Tau != 0.2 {
		t.Errorf("paper thresholds: eps=%v tau=%v", cfg.Epsilon, cfg.Tau)
	}
	if !cfg.UseContext {
		t.Error("operation context must default on")
	}
	sys := New(cfg)
	if sys == nil || sys.SignatureCount() != 0 {
		t.Error("fresh system should be empty")
	}
}

func TestPublicMIC(t *testing.T) {
	rng := NewRNG(1)
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = xs[i] * xs[i]
	}
	if s := MIC(xs, ys); s < 0.9 {
		t.Errorf("MIC(parabola) = %v", s)
	}
	res, err := ComputeMIC(xs, ys, MICConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MIC < 0.9 || res.N != n {
		t.Errorf("ComputeMIC = %+v", res)
	}
	if s := ARXAssociation(xs, ys); s < 0 || s > 1 {
		t.Errorf("ARXAssociation out of bounds: %v", s)
	}
}

func TestPublicARIMA(t *testing.T) {
	rng := NewRNG(2)
	xs := make([]float64, 500)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.6*xs[i-1] + rng.Normal(0, 1)
	}
	m, err := FitARIMA(xs, ARIMAOrder{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AR[0]-0.6) > 0.15 {
		t.Errorf("AR[0] = %v", m.AR[0])
	}
	auto, err := AutoFitARIMA(xs)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Order.P < 1 {
		t.Errorf("AutoFit order = %v", auto.Order)
	}
}

func TestPublicClusterWorkflow(t *testing.T) {
	c := NewCluster(4, 7)
	if len(c.Slaves()) != 4 {
		t.Fatalf("slaves = %d", len(c.Slaves()))
	}
	spec := NewBatchJob(Grep, WorkloadParams{InputMB: 2048, RNG: NewRNG(8)})
	j := c.Submit(spec)
	rng := NewRNG(9)
	col := NewMetricsCollector(rng.Fork(1))
	smp := NewCPISampler(rng.Fork(2))
	tr := NewMetricsTrace(c.Slaves()[0].IP, "grep")
	err := c.RunUntilDone(j, 2000, func(tick int) {
		if err := tr.Add(col.Collect(c.Slaves()[0]), smp.Sample(c.Slaves()[0], "grep")); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 5 {
		t.Errorf("trace len = %d", tr.Len())
	}
	p95, err := CPIRunStatistic(tr.CPI)
	if err != nil {
		t.Fatal(err)
	}
	if p95 <= 0 {
		t.Errorf("p95 CPI = %v", p95)
	}
}

func TestPublicFaultInjection(t *testing.T) {
	inj, err := NewFault("cpu-hog", FaultWindow{Start: 0, End: 100}, NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	c := NewHeterogeneousCluster(2, 11)
	c.Slaves()[0].Attach(inj)
	c.Step()
	if c.Slaves()[0].State.CPUSat == 0 {
		t.Error("cpu-hog produced no saturation")
	}
	if _, err := NewFault("nosuch", FaultWindow{}, NewRNG(12)); err == nil {
		t.Error("unknown fault should error")
	}
}

func TestPublicEndToEndDiagnosis(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline")
	}
	opts := DefaultExperimentOptions()
	opts.TrainRuns = 4
	opts.InputMB = 6 * 1024
	runner := NewExperimentRunner(opts)
	sys, _, err := runner.TrainSystem(Wordcount)
	if err != nil {
		t.Fatal(err)
	}
	// Record and rediagnose a memory hog.
	for i := 0; i < 2; i++ {
		res, err := runner.Run(Wordcount, "mem-hog", 100000+i)
		if err != nil {
			t.Fatal(err)
		}
		win, err := res.TargetTrace().Slice(res.Window.Start, minInt(res.Window.End, res.TargetTrace().Len()))
		if err != nil {
			t.Fatal(err)
		}
		ctx := Context{Workload: "wordcount", IP: res.TargetIP}
		if err := sys.BuildSignature(ctx, "mem-hog", win); err != nil {
			t.Fatal(err)
		}
	}
	res, err := runner.Run(Wordcount, "mem-hog", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.TargetTrace()
	ctx := Context{Workload: "wordcount", IP: res.TargetIP}
	mon, err := sys.NewMonitor(ctx, tr.CPI[:6])
	if err != nil {
		t.Fatal(err)
	}
	alert := -1
	for i := 6; i < tr.Len(); i++ {
		mon.Offer(tr.CPI[i])
		if mon.Alert() {
			alert = i
			break
		}
	}
	if alert < 0 {
		t.Fatal("mem-hog not detected")
	}
	win, err := tr.Slice(alert-2, minInt(alert-2+30, tr.Len()))
	if err != nil {
		t.Fatal(err)
	}
	diag, err := sys.Diagnose(ctx, win)
	if err != nil {
		t.Fatal(err)
	}
	if diag.RootCause() != "mem-hog" {
		t.Errorf("diagnosed %q, want mem-hog (causes: %v)", diag.RootCause(), diag.Causes)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
